// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 4) on the substituted benchmark suite: it runs the
// instrumented FSM self-equivalence checks, aggregates the intercepted
// minimization calls, and prints Table 1 (criteria properties), Table 2
// (the heuristic family), Table 3 (cumulative sizes / runtimes / ranks per
// c_onset_size bucket), Table 4 (head-to-head wins), Figure 3 (robustness
// curves) and the Section 4.2 summary scalars.
//
// Usage:
//
//	experiments [-bench s344,tlc,...] [-table N] [-figure N] [-summary]
//	            [-iters N] [-maxnodes N] [-timeout D] [-lbcubes N]
//	            [-validate] [-o FILE] [-workers N] [-trace-dir DIR]
//	            [-cpuprofile FILE]
//
// With -workers > 1 (0 = GOMAXPROCS) the benchmarks run on a worker pool,
// one BDD manager per worker; tables and records are identical to a
// sequential run (only wall-clock changes).
//
// With -trace-dir the harness writes one structured JSONL trace file per
// benchmark (<name>.trace.jsonl): the intercepted calls, every heuristic
// application with its computed-cache snapshot, and per-benchmark GC
// totals. Traces omit durations unless -trace-timings is set, so repeated
// runs are byte-identical. In parallel runs each benchmark's file is
// written by its own worker; file contents are per-benchmark, hence
// deterministic regardless of worker count.
//
// With no selection flags, everything is produced.
//
// -maxnodes and -timeout are enforced inside the BDD kernels: a benchmark
// that trips a bound reports an aborted (degraded) traversal instead of
// running away, and the abort is recorded in the trace stream. Internal
// panics are caught at the top level and reported with the benchmark
// selection (exit status 2).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"bddmin/internal/circuits"
	"bddmin/internal/core"
	"bddmin/internal/harness"
)

func main() {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "experiments: internal error: %v\n", r)
			sel := "(full suite)"
			if f := flag.Lookup("bench"); f != nil && f.Value.String() != "" {
				sel = f.Value.String()
			}
			fmt.Fprintf(os.Stderr, "experiments: while running benchmarks %s\n", sel)
			os.Exit(2)
		}
	}()
	run()
}

func run() {
	var (
		benchList = flag.String("bench", "", "comma-separated benchmark names (default: full suite)")
		table     = flag.Int("table", 0, "produce only this table (1-4)")
		figure    = flag.Int("figure", 0, "produce only this figure (3)")
		summary   = flag.Bool("summary", false, "produce only the Section 4.2 summary")
		iters     = flag.Int("iters", 64, "max BFS iterations per benchmark")
		maxNodes  = flag.Int("maxnodes", 2_000_000, "abort a benchmark beyond this many live BDD nodes (enforced inside the kernels)")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget per benchmark, e.g. 30s (0 = none)")
		lbCubes   = flag.Int("lbcubes", 1000, "cube budget for the lower bound")
		validate  = flag.Bool("validate", false, "verify every heuristic result is a cover")
		extended  = flag.Bool("extended", false, "also run the extension heuristics (sched, robust)")
		plainLB   = flag.Bool("plainlb", false, "use the paper's plain DFS cube bound instead of the improved large-cube split")
		workers   = flag.Int("workers", 1, "run benchmarks across this many workers (one BDD manager each; 0 = GOMAXPROCS)")
		matchWork = flag.Int("match-workers", 1, "fan level-matching pair matrices across this many concurrent match kernels per benchmark (results are byte-identical for every setting)")
		outFile   = flag.String("o", "", "also write the report to this file")
		csvFile   = flag.String("csv", "", "write raw per-call records to this CSV file")
		quiet     = flag.Bool("q", false, "suppress per-benchmark progress")
		traceDir  = flag.String("trace-dir", "", "write one JSONL trace file per benchmark into this directory")
		traceTime = flag.Bool("trace-timings", false, "include nanosecond durations in trace files")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProf == "" {
			return
		}
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	var out io.Writer = os.Stdout
	var tee *os.File
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		tee = f
		out = io.MultiWriter(os.Stdout, f)
	}
	_ = tee

	all := *table == 0 && *figure == 0 && !*summary

	if all || *table == 1 {
		fmt.Fprintln(out, renderTable1())
	}
	if all || *table == 2 {
		fmt.Fprintln(out, renderTable2())
	}
	if !(all || *table >= 3 || *figure == 3 || *summary) {
		return
	}

	var names []string
	if *benchList != "" {
		names = strings.Split(*benchList, ",")
	}
	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}
	cfg := harness.Config{
		LowerBoundCubes: *lbCubes,
		Validate:        *validate,
		PlainLowerBound: *plainLB,
		MatchWorkers:    *matchWork,
	}
	if *extended {
		cfg.Heuristics = append(core.ExtendedRegistry(), core.FAndC(), core.FOrNC(), core.FOrig())
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	rc := harness.RunConfig{
		Collector:     cfg,
		MaxIterations: *iters,
		MaxNodes:      *maxNodes,
		Timeout:       *timeout,
		Progress:      progress,
		TraceDir:      *traceDir,
		TraceTimings:  *traceTime,
	}
	var (
		col  *harness.Collector
		runs []harness.BenchmarkRun
		err  error
	)
	if *workers == 1 {
		col, runs, err = harness.RunSuite(names, rc)
	} else {
		col, runs, err = harness.RunSuiteParallel(names, rc, *workers)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Fprintf(out, "Benchmarks run: %d, instrumented minimization calls: %d (trivial filtered: %d)\n\n",
		len(runs), len(col.Records), col.FilteredTrivial)
	if *csvFile != "" {
		f, err := os.Create(*csvFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := harness.WriteCSV(f, col.Records, col.HeuristicNames()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(out, "raw records written to %s\n\n", *csvFile)
	}
	if all || *table == 3 {
		fmt.Fprintln(out, harness.RenderTable3(col.Records, col.HeuristicNames()))
	}
	if all || *table == 4 {
		fmt.Fprintln(out, harness.RenderTable4(col.Records, harness.Table4Names()))
	}
	if all || *figure == 3 {
		fmt.Fprintln(out, harness.RenderFigure3(col.Records, harness.Figure3Names()))
	}
	if all || *summary {
		fmt.Fprintln(out, harness.RenderPerBenchmark(col.Records))
		fmt.Fprintln(out, harness.Summarize(col).String())
		fmt.Fprintln(out, "Orthogonality (sum of head-to-head win rates; higher = more complementary):")
		for _, pair := range [][2]string{
			{"const", "tsm_td"}, {"const", "opt_lv"}, {"osm_bt", "tsm_td"}, {"restr", "opt_lv"},
		} {
			fmt.Fprintf(out, "  %-7s vs %-7s %.1f%%   [paper reports 54.3%% for const/tsm_td]\n",
				pair[0], pair[1], harness.Orthogonality(col.Records, pair[0], pair[1]))
		}
	}
}

// renderTable1 prints the matching-criteria property table (Table 1).
func renderTable1() string {
	var b strings.Builder
	b.WriteString("Table 1 — properties of the matching criteria\n")
	b.WriteString("Criterion  Reflexive  Symmetric  Transitive\n")
	b.WriteString("--------------------------------------------\n")
	yn := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	for _, cr := range core.Criteria() {
		fmt.Fprintf(&b, "%-9s  %-9s  %-9s  %-9s\n", cr, yn(cr.Reflexive()), yn(cr.Symmetric()), yn(cr.Transitive()))
	}
	return b.String()
}

// renderTable2 prints the sibling-heuristic family (Table 2).
func renderTable2() string {
	var b strings.Builder
	b.WriteString("Table 2 — heuristics based on matching siblings\n")
	b.WriteString("#   Criterion  match-compl  no-new-vars  Name/Comment\n")
	b.WriteString("------------------------------------------------------\n")
	type row struct {
		cr         core.Criterion
		compl, nnv bool
		comment    string
	}
	rows := []row{
		{core.OSDM, false, false, "constrain"},
		{core.OSDM, false, true, "restrict"},
		{core.OSDM, true, false, "same as 1"},
		{core.OSDM, true, true, "same as 2"},
		{core.OSM, false, false, "osm_td"},
		{core.OSM, false, true, "osm_nv"},
		{core.OSM, true, false, "osm_cp"},
		{core.OSM, true, true, "osm_bt"},
		{core.TSM, false, false, "tsm_td"},
		{core.TSM, false, true, "same as 9"},
		{core.TSM, true, false, "tsm_cp"},
		{core.TSM, true, true, "same as 11"},
	}
	yn := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	for i, r := range rows {
		name := core.NewSiblingHeuristic(r.cr, r.compl, r.nnv).Name()
		fmt.Fprintf(&b, "%-3d %-9s  %-11s  %-11s  %s (canonical: %s)\n",
			i+1, r.cr, yn(r.compl), yn(r.nnv), r.comment, name)
	}
	_ = circuits.Names
	return b.String()
}

// Command bddmind is the minimization daemon: an HTTP/JSON service that
// accepts jobs in the framework's three input formats (leaf-notation spec,
// PLA, BLIF+node) and runs them on a sharded worker pool, one private BDD
// manager per shard.
//
// Usage:
//
//	bddmind [-addr :8080] [-shards N] [-queue N] [-max-vars N]
//	        [-req-nodes N] [-live-nodes N] [-timeout D] [-max-timeout D]
//	        [-max-match-workers N] [-retry-after D] [-cache on|off]
//	        [-cache-entries N] [-cache-bytes N] [-trace-out serve.jsonl]
//	        [-drain-timeout D]
//
// Endpoints:
//
//	POST /minimize   one job; 200 with the cover (possibly degraded),
//	                 429 + Retry-After under backpressure, 503 while
//	                 draining
//	POST /optimize-network   whole-network don't-care optimization of a
//	                 BLIF netlist (package network): 200 with the per-sweep
//	                 trajectory and the rewritten BLIF, same admission
//	                 control and budgets as /minimize; never cached or
//	                 coalesced
//	GET  /healthz    200 ok / 503 draining
//	GET  /metrics    queue depth, shard utilization, latency histogram,
//	                 per-heuristic metrics, admission counters
//
// Resource limits map onto kernel budgets: -req-nodes caps every
// request's node allocations (bdd.Budget.MaxNodesMade), -live-nodes
// bounds each shard's arena, -timeout/-max-timeout set and clamp request
// deadlines. A tripped budget degrades the request to the best valid
// intermediate cover instead of failing it. -max-match-workers caps each
// request's match_workers knob (parallel level matching on its shard);
// the default 0 keeps every request on the serial matcher.
//
// The result cache is on by default: identical requests are answered from
// a byte-budgeted LRU (front line) or from a content-addressed store of
// already-built [f, c] pairs (shard side), and concurrent identical
// requests coalesce onto one execution. -cache off disables all of it;
// -cache-entries and -cache-bytes bound the store.
//
// SIGTERM or SIGINT starts a graceful drain: admission stops (503), the
// queued and in-flight jobs finish, then the process exits 0. -trace-out
// streams the request lifecycle and every request's pipeline events as
// JSONL (see docs/ARCHITECTURE.md for the schema).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bddmin/internal/obs"
	"bddmin/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		shards       = flag.Int("shards", 2, "worker pool size (one private BDD manager each)")
		queue        = flag.Int("queue", 64, "bounded admission queue depth (full queue = 429)")
		maxVars      = flag.Int("max-vars", 64, "largest instance accepted, in BDD variables (413 beyond)")
		reqNodes     = flag.Uint64("req-nodes", 0, "per-request node-allocation cap (0 = unlimited)")
		liveNodes    = flag.Int("live-nodes", 0, "per-shard live-node bound (0 = unlimited)")
		timeout      = flag.Duration("timeout", 0, "default per-request deadline, e.g. 2s (0 = none)")
		maxTimeout   = flag.Duration("max-timeout", 0, "clamp on requested deadlines (0 = no clamp)")
		maxMatchWork = flag.Int("max-match-workers", 0, "cap on per-request match_workers (parallel level matching; 0 = always serial)")
		retryAfter   = flag.Duration("retry-after", 500*time.Millisecond, "backoff hint attached to 429 responses")
		cache        = flag.String("cache", "on", "result cache + request coalescing: on or off")
		cacheEntries = flag.Int("cache-entries", 4096, "result-cache entry cap")
		cacheBytes   = flag.Int64("cache-bytes", 64<<20, "result-cache byte budget")
		traceOut     = flag.String("trace-out", "", "write the serve + pipeline event stream as JSONL to this file")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a signal-triggered drain may take")
	)
	flag.Parse()

	cfg := serve.Config{
		Shards:             *shards,
		QueueDepth:         *queue,
		MaxVars:            *maxVars,
		MaxNodesPerRequest: *reqNodes,
		MaxLiveNodes:       *liveNodes,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		MaxMatchWorkers:    *maxMatchWork,
		RetryAfter:         *retryAfter,
	}
	switch *cache {
	case "on":
		cfg.CacheEntries = *cacheEntries
		cfg.CacheBytes = *cacheBytes
	case "off":
		// Leave both zero: serve.New builds no cache and no singleflight.
	default:
		fail(fmt.Errorf("bddmind: -cache must be on or off, got %q", *cache))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		bw := bufio.NewWriter(f)
		jl := obs.NewJSONL(bw)
		cfg.Trace = jl
		defer func() {
			if err := jl.Err(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			bw.Flush()
			f.Close()
		}()
	}

	s := serve.New(cfg)
	s.Start()
	httpServer := &http.Server{Addr: *addr, Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("bddmind: listening on %s (%d shards, queue %d)\n", *addr, *shards, *queue)
		errc <- httpServer.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		fail(err)
	case sig := <-sigc:
		fmt.Printf("bddmind: %v received, draining\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain first so queued work finishes and new requests see 503, then
	// shut the HTTP server down — its handlers are unblocked by the
	// responses the drain delivered.
	if err := s.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "bddmind: %v\n", err)
		os.Exit(1)
	}
	if err := httpServer.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "bddmind: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("bddmind: drained cleanly, exiting")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

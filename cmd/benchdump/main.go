// Command benchdump measures the kernel's hot paths and the benchmark-suite
// wall-clock, and writes the results as BENCH_kernel.json so successive
// performance PRs have a machine-readable trajectory.
//
// Two families are recorded:
//
//   - micro: Support / Size / Density / SharedSize / ITE / budgeted ITE
//     (micro/budget_overhead, the governance tax against micro/ite) /
//     Constrain / GC / OSM-match / TSM-match / level-match — serial
//     (micro/levelmatch) and fanned across -match-workers concurrent match
//     kernels (micro/levelmatch_par) — on a deterministic pool of random
//     functions, via testing.Benchmark, with ns/op and allocs/op (the
//     stamped traversals and match kernels must report 0 allocs/op);
//   - suite: one instrumented FSM self-equivalence sweep over the selected
//     benchmarks, sequential, with the parallel worker pool, and with
//     parallel level matching inside each benchmark
//     (suite/matchworkers-N), with NodesMade as the work measure, plus one
//     whole-network don't-care optimization run (suite/netopt) on the first
//     selected benchmark, recording the per-sweep node-count trajectory.
//
// The sequential sweep runs with the observability tracer attached, and
// its aggregated per-heuristic breakdown (applications, acceptances, wins,
// nodes saved, cumulative time) lands in the report's "heuristics"
// section (schema bddmin-bench-kernel/5). Benchmarks that fan level
// matching record their worker count in the match_workers field; their
// covers are byte-identical to the serial runs, so only runtimes move.
//
// Usage:
//
//	benchdump [-o BENCH_kernel.json] [-workers N] [-match-workers N]
//	          [-bench tlc,tbk,...] [-nosuite] [-q] [-cpuprofile FILE]
//	          [-memprofile FILE]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"bddmin/internal/bdd"
	"bddmin/internal/circuits"
	"bddmin/internal/core"
	"bddmin/internal/harness"
	"bddmin/internal/network"
	"bddmin/internal/obs"
)

func main() {
	var (
		outFile   = flag.String("o", "BENCH_kernel.json", "output file (\"-\" for stdout)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker count for the parallel suite run")
		matchWork = flag.Int("match-workers", 2, "fan-out for the parallel level-matching benchmarks (micro/levelmatch_par, suite/matchworkers-N)")
		bench     = flag.String("bench", "tlc,minmax5,tbk,s386", "comma-separated suite benchmarks")
		noSuite   = flag.Bool("nosuite", false, "skip the suite-level runs (micros only)")
		quiet     = flag.Bool("q", false, "suppress progress output")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProf == "" {
			return
		}
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	// Validate the suite selection up front so a typo fails fast instead of
	// surfacing after the micros (or, with -nosuite, never at all).
	names := strings.Split(*bench, ",")
	for _, n := range names {
		if _, err := circuits.ByName(n); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	report := harness.BenchReport{
		Schema:     harness.BenchReportSchema,
		Timestamp:  time.Now().UTC(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    *workers,
	}
	progress := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}

	for _, mb := range microBenches(*matchWork) {
		res := testing.Benchmark(mb.fn)
		kb := harness.KernelBench{
			Name:         "micro/" + mb.name,
			Iterations:   res.N,
			NsPerOp:      float64(res.NsPerOp()),
			AllocsPerOp:  res.AllocsPerOp(),
			BytesPerOp:   res.AllocedBytesPerOp(),
			MatchWorkers: mb.matchWorkers,
		}
		report.Benchmarks = append(report.Benchmarks, kb)
		progress("%-24s %12.1f ns/op %6d allocs/op\n", kb.Name, kb.NsPerOp, kb.AllocsPerOp)
	}

	if !*noSuite {
		// The sequential sweep carries the metrics tracer; its per-heuristic
		// aggregation becomes the report's breakdown section. The parallel
		// sweep runs untraced so the speedup measurement stays clean.
		var metrics obs.Metrics
		seqRC := harness.RunConfig{Collector: harness.Config{LowerBoundCubes: 100, Tracer: &metrics}}
		rc := harness.RunConfig{Collector: harness.Config{LowerBoundCubes: 100}}
		seq, err := timeSuite("suite/sequential", func() ([]harness.BenchmarkRun, error) {
			_, runs, err := harness.RunSuite(names, seqRC)
			return runs, err
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report.Benchmarks = append(report.Benchmarks, seq)
		report.Heuristics = harness.HeuristicSummaries(&metrics)
		progress("%-24s %12.1f ns/op (%.2fs)\n", seq.Name, seq.NsPerOp, seq.NsPerOp/1e9)
		par, err := timeSuite(fmt.Sprintf("suite/parallel-%d", *workers), func() ([]harness.BenchmarkRun, error) {
			_, runs, err := harness.RunSuiteParallel(names, rc, *workers)
			return runs, err
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report.Benchmarks = append(report.Benchmarks, par)
		progress("%-24s %12.1f ns/op (%.2fs, %.2fx vs sequential)\n",
			par.Name, par.NsPerOp, par.NsPerOp/1e9, seq.NsPerOp/par.NsPerOp)
		// Sequential sweep again, but fanning each benchmark's level matching
		// across the match-kernel pool: measures intra-benchmark parallelism
		// against suite/sequential (identical covers, identical NodesMade).
		mwRC := harness.RunConfig{Collector: harness.Config{LowerBoundCubes: 100, MatchWorkers: *matchWork}}
		mw, err := timeSuite(fmt.Sprintf("suite/matchworkers-%d", *matchWork), func() ([]harness.BenchmarkRun, error) {
			_, runs, err := harness.RunSuite(names, mwRC)
			return runs, err
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		mw.MatchWorkers = *matchWork
		report.Benchmarks = append(report.Benchmarks, mw)
		progress("%-24s %12.1f ns/op (%.2fs, %.2fx vs sequential)\n",
			mw.Name, mw.NsPerOp, mw.NsPerOp/1e9, seq.NsPerOp/mw.NsPerOp)
		// Whole-network don't-care optimization of the first selected
		// benchmark (package network): wall-clock, kernel work, and the
		// per-sweep node-count trajectory (sweep_nodes, schema /5). The
		// trajectory is monotone by construction, so a regression here means
		// the windowed CDC extraction stopped finding flexibility.
		info, err := circuits.ByName(names[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		netStart := time.Now()
		res, err := network.Optimize(info.Build(), network.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		netKB := harness.KernelBench{
			Name:       "suite/netopt",
			Iterations: 1,
			NsPerOp:    float64(time.Since(netStart).Nanoseconds()),
			NodesMade:  res.NodesMade,
		}
		for _, s := range res.Sweeps {
			netKB.SweepNodes = append(netKB.SweepNodes, s.Nodes)
		}
		report.Benchmarks = append(report.Benchmarks, netKB)
		progress("%-24s %12.1f ns/op (%s: nodes %d -> %d, %d sweeps)\n",
			netKB.Name, netKB.NsPerOp, info.Name, res.InitialNodes, res.FinalNodes, len(res.Sweeps))
	}

	var out *os.File
	if *outFile == "-" {
		out = os.Stdout
	} else {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := harness.WriteBenchJSON(out, report); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *outFile != "-" {
		progress("report written to %s\n", *outFile)
	}
}

// timeSuite wall-clocks one full suite sweep and folds the per-benchmark
// NodesMade counters into the record.
func timeSuite(name string, run func() ([]harness.BenchmarkRun, error)) (harness.KernelBench, error) {
	start := time.Now()
	runs, err := run()
	if err != nil {
		return harness.KernelBench{}, err
	}
	elapsed := time.Since(start)
	var nodes uint64
	for _, r := range runs {
		nodes += r.NodesMade
	}
	return harness.KernelBench{
		Name:       name,
		Iterations: 1,
		NsPerOp:    float64(elapsed.Nanoseconds()),
		NodesMade:  nodes,
	}, nil
}

type microBench struct {
	name string
	fn   func(b *testing.B)
	// matchWorkers is recorded in the report entry when the bench fans
	// level matching (0 = serial matcher).
	matchWorkers int
}

// pool builds a deterministic set of random functions over n variables,
// mirroring the bdd package's internal benchSetup but through the public
// API.
func pool(n, count int, seed int64) (*bdd.Manager, []bdd.Ref) {
	m := bdd.New(n)
	rng := rand.New(rand.NewSource(seed))
	vs := make([]bdd.Var, n)
	for i := range vs {
		vs[i] = bdd.Var(i)
	}
	funcs := make([]bdd.Ref, count)
	for i := range funcs {
		vals := make([]bool, 1<<n)
		for j := range vals {
			vals[j] = rng.Intn(2) == 1
		}
		funcs[i] = m.FromTruthTable(vs, vals)
	}
	return m, funcs
}

func microBenches(matchWorkers int) []microBench {
	return []microBench{
		{"support", func(b *testing.B) {
			m, fs := pool(14, 16, 7)
			var buf []bdd.Var
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = m.AppendSupport(buf[:0], fs[i%16])
			}
		}, 0},
		{"size", func(b *testing.B) {
			m, fs := pool(14, 16, 7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Size(fs[i%16])
			}
		}, 0},
		{"density", func(b *testing.B) {
			m, fs := pool(14, 16, 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Density(fs[i%16])
			}
		}, 0},
		{"shared_size", func(b *testing.B) {
			m, fs := pool(14, 16, 9)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.SharedSize(fs...)
			}
		}, 0},
		{"ite", func(b *testing.B) {
			m, fs := pool(12, 64, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%1024 == 0 {
					m.FlushCaches()
				}
				m.ITE(fs[i%64], fs[(i+7)%64], fs[(i+13)%64])
			}
		}, 0},
		{"budget_overhead", func(b *testing.B) {
			// Identical workload to micro/ite but with a generous (never
			// firing) kernel budget attached: the delta against micro/ite is
			// the cost of resource governance on the hottest path, tracked in
			// the trajectory so it stays within the <2% target.
			m, fs := pool(12, 64, 1)
			m.SetBudget(&bdd.Budget{MaxNodesMade: 1 << 62})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%1024 == 0 {
					m.FlushCaches()
				}
				m.ITE(fs[i%64], fs[(i+7)%64], fs[(i+13)%64])
			}
		}, 0},
		{"constrain", func(b *testing.B) {
			m, fs := pool(12, 64, 5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := fs[(i+17)%64]
				if c == bdd.Zero {
					continue
				}
				if i%256 == 0 {
					m.FlushCaches()
				}
				m.Constrain(fs[i%64], c)
			}
		}, 0},
		{"gc", func(b *testing.B) {
			m, fs := pool(12, 32, 11)
			for _, f := range fs {
				m.Protect(f)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Regrow some garbage, then collect: steady-state GC cost.
				_ = m.Xor(fs[i%32], fs[(i+5)%32])
				m.GC()
			}
		}, 0},
		{"osm_match", func(b *testing.B) {
			m, fs := pool(12, 64, 21)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%1024 == 0 {
					m.FlushCaches()
				}
				m.MatchOSM(fs[i%64], fs[(i+7)%64], fs[(i+13)%64], fs[(i+29)%64])
			}
		}, 0},
		{"tsm_match", func(b *testing.B) {
			m, fs := pool(12, 64, 22)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%1024 == 0 {
					m.FlushCaches()
				}
				m.MatchTSM(fs[i%64], fs[(i+7)%64], fs[(i+13)%64], fs[(i+29)%64])
			}
		}, 0},
		{"levelmatch", func(b *testing.B) {
			// One full opt_lv pass over a random incompletely specified
			// function: collect + signature + solve at every level. Caches
			// are flushed per iteration so each pass pays the kernels' cost.
			m, fs := pool(12, 2, 23)
			f, c := fs[0], fs[1]
			if c == bdd.Zero {
				c = bdd.One
			}
			opt := &core.OptLv{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.FlushCaches()
				opt.Minimize(m, f, c)
			}
		}, 0},
		{"levelmatch_par", func(b *testing.B) {
			// The same opt_lv workload with its pair matrices fanned across
			// the match-kernel pool; the cover is byte-identical to
			// micro/levelmatch, so the delta is pure session + fan-out cost
			// (a win only with real parallel hardware; a measured tax on one
			// CPU).
			m, fs := pool(12, 2, 23)
			f, c := fs[0], fs[1]
			if c == bdd.Zero {
				c = bdd.One
			}
			opt := &core.OptLv{MatchWorkers: matchWorkers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.FlushCaches()
				opt.Minimize(m, f, c)
			}
		}, matchWorkers},
	}
}

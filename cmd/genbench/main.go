// Command genbench materializes the generated benchmark suite as BLIF
// netlists, so the substituted machines can be inspected, simulated in
// other tools, or fed back through cmd/verifyfsm.
//
// Usage:
//
//	genbench -name s344 [-o s344.blif]     # one machine (default stdout)
//	genbench -all -dir bench/               # the whole suite
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"bddmin/internal/circuits"
	"bddmin/internal/logic"
)

func main() {
	var (
		name   = flag.String("name", "", "benchmark name (see verifyfsm -list)")
		out    = flag.String("o", "", "output file (default stdout)")
		all    = flag.Bool("all", false, "write every suite machine")
		dir    = flag.String("dir", ".", "output directory for -all")
		orders = flag.Bool("orders", false, "report BDD sizes under declaration vs DFS variable order for every suite machine")
	)
	flag.Parse()

	switch {
	case *orders:
		fmt.Printf("%-10s %12s %12s\n", "benchmark", "decl order", "dfs order")
		for _, e := range circuits.Suite() {
			net := e.Build()
			decl, dfs := logic.CompareOrders(net)
			fmt.Printf("%-10s %12d %12d\n", e.Name, decl, dfs)
		}
	case *all:
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fail(err)
		}
		for _, e := range circuits.Suite() {
			path := filepath.Join(*dir, e.Name+".blif")
			f, err := os.Create(path)
			if err != nil {
				fail(err)
			}
			if err := logic.WriteBLIF(f, e.Build()); err != nil {
				fail(err)
			}
			f.Close()
			fmt.Printf("wrote %s (%d inputs, %d latches)\n", path, e.Inputs, e.Latches)
		}
	case *name != "":
		info, err := circuits.ByName(*name)
		if err != nil {
			fail(err)
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			w = f
		}
		if err := logic.WriteBLIF(w, info.Build()); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// Command bddload is the closed-loop load generator for bddmind: it
// replays a mixed spec/PLA/BLIF corpus against a running server at a
// target concurrency, verifies every returned cover client-side
// (f·c ≤ g ≤ f + ¬c — the server is not trusted), honors 429 backpressure
// by sleeping out the Retry-After hint, and emits BENCH_serve.json with
// throughput, exact p50/p95/p99 latency and the degraded fraction.
//
// Usage:
//
//	bddload -corpus examples/corpus/mixed.txt [-addr http://localhost:8080]
//	        [-n 500] [-c 8] [-heuristic osm_bt] [-timeout-ms 0]
//	        [-budget-nodes 0] [-dup 0] [-out BENCH_serve.json] [-no-verify]
//
// -dup redirects that fraction of requests to one hot instance, the
// duplicate-heavy replay that exercises the server's result cache and
// singleflight coalescing; the report embeds the server's final /metrics
// snapshot so its cache counters ride along with the client-side numbers.
//
// -addr may point at a bddrouter instead of a single bddmind: the harness
// then also records the per-backend request distribution and per-backend
// cache hits (from the router's X-Bddmind-Backend response header),
// embeds the router's /metrics snapshot — ejections, failovers, retry
// histogram and ring composition — in the report's router_metrics field,
// and distills the grey-failure counters (hedges, breaker transitions,
// deadline 504s, attempt histogram) into router_grey (schema
// bddmin-bench-serve/4).
//
// The corpus format is one instance per line: a leaf-notation spec, or
// `@pla path [output]` / `@blif path [node]` file references resolved
// relative to the corpus file (see internal/problem).
//
// Exit status: 1 on configuration or transport trouble, 2 if any response
// failed the client-side cover check — an incorrect cover is a server
// bug, not load.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"bddmin/internal/harness"
	"bddmin/internal/problem"
	"bddmin/internal/route"
	"bddmin/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8080", "bddmind base URL")
		corpus      = flag.String("corpus", "", "corpus file: one instance per line (spec, @pla, @blif)")
		n           = flag.Int("n", 500, "total requests to complete")
		c           = flag.Int("c", 8, "closed-loop concurrency (in-flight requests)")
		heuristic   = flag.String("heuristic", "", "heuristic for every request (empty = server default)")
		timeoutMs   = flag.Int("timeout-ms", 0, "per-request deadline forwarded to the server")
		budgetNodes = flag.Uint64("budget-nodes", 0, "per-request node cap forwarded to the server")
		dup         = flag.Float64("dup", 0, "fraction of requests (0..1) redirected to one hot instance")
		out         = flag.String("out", "BENCH_serve.json", "report output path")
		noVerify    = flag.Bool("no-verify", false, "skip the client-side cover check")
		retries     = flag.Int("retries", 50, "max consecutive 429 retries per request")
		wait        = flag.Duration("wait", 5*time.Second, "how long to wait for the server to become healthy")
	)
	flag.Parse()
	if *corpus == "" {
		flag.Usage()
		os.Exit(1)
	}
	probs, err := problem.LoadCorpusFile(*corpus)
	if err != nil {
		fail(err)
	}
	// Size the connection pool to the concurrency: the default transport
	// keeps only 2 idle conns per host, which throttles the offered load
	// with per-request TCP handshakes.
	client := &serve.Client{Base: *addr, HTTP: &http.Client{
		Transport: &http.Transport{MaxIdleConns: *c + 4, MaxIdleConnsPerHost: *c + 4},
	}}
	if err := client.WaitHealthy(*wait); err != nil {
		fail(err)
	}
	if *dup < 0 || *dup > 1 {
		fail(fmt.Errorf("bddload: -dup must be in [0, 1], got %g", *dup))
	}
	fmt.Printf("bddload: %d requests over a %d-instance corpus, concurrency %d, dup %.0f%%, verify=%v\n",
		*n, len(probs), *c, 100**dup, !*noVerify)

	stats, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		Client:      client,
		Problems:    serve.Refs(probs, *heuristic),
		Requests:    *n,
		Concurrency: *c,
		Heuristic:   *heuristic,
		TimeoutMs:   *timeoutMs,
		BudgetNodes: *budgetNodes,
		Verify:      !*noVerify,
		MaxRetries:  *retries,
		DupRate:     *dup,
	})
	if err != nil {
		fail(err)
	}

	report := harness.ServeBenchReport{
		Schema:           harness.ServeBenchSchema,
		Timestamp:        time.Now().UTC(),
		URL:              *addr,
		CorpusSize:       len(probs),
		Concurrency:      *c,
		Requests:         stats.Requests,
		DurationNs:       stats.Elapsed.Nanoseconds(),
		ThroughputRPS:    stats.Throughput(),
		P50Ns:            stats.Percentile(0.50).Nanoseconds(),
		P95Ns:            stats.Percentile(0.95).Nanoseconds(),
		P99Ns:            stats.Percentile(0.99).Nanoseconds(),
		MaxNs:            stats.Percentile(1.0).Nanoseconds(),
		Degraded:         stats.Degraded,
		Rejected429:      stats.Rejected429,
		Errors:           stats.ErrorCount,
		VerifyFailures:   len(stats.VerifyFails),
		Verified:         !*noVerify,
		ByFormat:         stats.ByFormat,
		DegradedFraction: frac(stats.Degraded, stats.Requests),
		DupRate:          *dup,
		CacheHits:        stats.CacheHits,
		Coalesced:        stats.Coalesced,
		CacheHitRate:     frac(stats.CacheHits+stats.Coalesced, stats.Requests),
		StatusCounts:     stats.StatusCounts,
	}
	if len(stats.ByBackend) > 0 {
		report.BackendDistribution = stats.ByBackend
		report.BackendCacheHits = stats.CacheByBackend
	}
	// Embed the target's final /metrics snapshot: the authoritative
	// admission and cache counters for the run the report describes. The
	// target may be a bddmind (shards) or a bddrouter (ring) — the
	// document shape tells them apart.
	if raw, err := client.RawMetrics(context.Background()); err == nil {
		var probe struct {
			Shards []json.RawMessage `json:"shards"`
			Ring   []json.RawMessage `json:"ring"`
		}
		_ = json.Unmarshal(raw, &probe)
		switch {
		case len(probe.Ring) > 0:
			report.RouterMetrics = raw
			var rs route.MetricsSnapshot
			if json.Unmarshal(raw, &rs) == nil {
				report.RouterGrey = greySummary(rs)
			}
		case len(probe.Shards) > 0:
			report.Metrics = raw
			report.Shards = len(probe.Shards)
			var snap serve.MetricsSnapshot
			if json.Unmarshal(raw, &snap) == nil {
				report.QueueCap = snap.QueueCap
			}
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	if err := harness.WriteServeJSON(f, report); err != nil {
		f.Close()
		fail(err)
	}
	f.Close()

	fmt.Printf("bddload: %d completed in %s (%.1f req/s), p50 %s p95 %s p99 %s\n",
		stats.Requests, stats.Elapsed.Round(time.Millisecond), stats.Throughput(),
		stats.Percentile(0.50).Round(time.Microsecond),
		stats.Percentile(0.95).Round(time.Microsecond),
		stats.Percentile(0.99).Round(time.Microsecond))
	fmt.Printf("bddload: degraded %d (%.1f%%), 429s absorbed %d, errors %d, verify failures %d\n",
		stats.Degraded, 100*report.DegradedFraction, stats.Rejected429, stats.ErrorCount, len(stats.VerifyFails))
	fmt.Printf("bddload: cache hits %d, coalesced %d (%.1f%% served without a fresh run)\n",
		stats.CacheHits, stats.Coalesced, 100*report.CacheHitRate)
	if len(stats.ByBackend) > 0 {
		backends := make([]string, 0, len(stats.ByBackend))
		for b := range stats.ByBackend {
			backends = append(backends, b)
		}
		sort.Strings(backends)
		for _, b := range backends {
			fmt.Printf("bddload: backend %s served %d (%d cached)\n", b, stats.ByBackend[b], stats.CacheByBackend[b])
		}
	}
	fmt.Printf("bddload: report written to %s\n", *out)
	for _, e := range stats.Errors {
		fmt.Fprintf(os.Stderr, "bddload: error: %s\n", e)
	}
	for _, v := range stats.VerifyFails {
		fmt.Fprintf(os.Stderr, "bddload: VERIFY FAIL: %s\n", v)
	}
	if len(stats.VerifyFails) > 0 {
		os.Exit(2)
	}
	if stats.Requests < *n {
		fmt.Fprintf(os.Stderr, "bddload: only %d of %d requests completed\n", stats.Requests, *n)
		os.Exit(1)
	}
}

// greySummary distills a router metrics snapshot into the schema-/4
// grey-failure digest: the router-level tail-tolerance counters, the
// breaker evidence summed over the fleet, and the attempt histogram.
func greySummary(rs route.MetricsSnapshot) *harness.RouterGreySummary {
	g := &harness.RouterGreySummary{
		Failovers:            rs.Counters.Failovers,
		Hedges:               rs.Counters.Hedges,
		HedgeWins:            rs.Counters.HedgeWins,
		Retried5xx:           rs.Counters.Retried5xx,
		DeadlineExceeded:     rs.Counters.DeadlineExceeded,
		BreakerFastFails:     rs.Counters.BreakerFastFails,
		RetryBudgetExhausted: rs.Counters.RetryBudgetExhausted,
	}
	for _, b := range rs.Backends {
		g.BreakerOpens += b.BreakerOpens
		g.BreakerCloses += b.BreakerCloses
		g.Timeouts += b.Timeouts
		g.Truncated += b.Truncated
		g.Corrupt += b.Corrupt
	}
	if len(rs.Retries) > 0 {
		g.AttemptHistogram = make(map[int]uint64, len(rs.Retries))
		for _, rb := range rs.Retries {
			g.AttemptHistogram[rb.Attempts] = rb.Count
		}
	}
	return g
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// Command dochygiene enforces the repository's documentation invariants.
// CI runs it on every push; it exits non-zero listing every violation.
//
// Checks:
//
//   - every relative markdown link in every tracked *.md file resolves to
//     an existing file or directory (external URLs and pure #anchors are
//     skipped, #fragment suffixes are stripped before resolving);
//   - every package under internal/ and cmd/ has a package comment (a doc
//     comment on the package clause in at least one non-test file).
//
// Usage:
//
//	dochygiene [-root DIR]
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	var problems []string
	report := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	checkLinks(*root, report)
	checkPackageComments(*root, report)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "dochygiene: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("dochygiene: ok")
}

// checkLinks resolves every relative markdown link against the linking
// file's directory.
func checkLinks(root string, report func(string, ...any)) {
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		switch d.Name() {
		// Source-material digests quoting other repositories; their links
		// point into those repos, not this one.
		case "SNIPPETS.md", "PAPERS.md", "PAPER.md", "ISSUE.md":
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, match := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := match[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" { // pure anchor
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				report("%s: broken link %q", path, match[1])
			}
		}
		return nil
	})
	if err != nil {
		report("walking %s: %v", root, err)
	}
}

// checkPackageComments requires a doc comment on the package clause of at
// least one non-test file in every Go package under internal/ and cmd/.
func checkPackageComments(root string, report func(string, ...any)) {
	for _, base := range []string{"internal", "cmd"} {
		dir := filepath.Join(root, base)
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			pkgDir := filepath.Join(dir, e.Name())
			files, err := filepath.Glob(filepath.Join(pkgDir, "*.go"))
			if err != nil || len(files) == 0 {
				continue
			}
			documented := false
			hasSource := false
			fset := token.NewFileSet()
			for _, f := range files {
				if strings.HasSuffix(f, "_test.go") {
					continue
				}
				hasSource = true
				parsed, err := parser.ParseFile(fset, f, nil, parser.PackageClauseOnly|parser.ParseComments)
				if err != nil {
					report("%s: %v", f, err)
					continue
				}
				if parsed.Doc != nil && strings.TrimSpace(parsed.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if hasSource && !documented {
				report("%s: package has no package comment", pkgDir)
			}
		}
	}
}

// Command bddmin minimizes an incompletely specified Boolean function
// given in the paper's leaf notation and reports the covers found by the
// heuristics of the framework.
//
// The spec lists the values of the function on the leaves of the binary
// decision tree left to right, 'd' marking don't cares; e.g. the paper's
// Figure 1 examples are written like "d1 01 1d 01".
//
// Usage:
//
//	bddmin -spec "d1 01 1d 01" [-heuristic osm_bt] [-all] [-exact] [-dot out.dot]
//	       [-workers N] [-trace] [-trace-out trace.jsonl]
//	       [-budget-nodes N] [-timeout D]
//	bddmin -pla file.pla [-output K] ...
//	bddmin -blif file.blif [-node NAME] ...
//	bddmin -network -blif file.blif [-window K] [-sweeps N] [-node-budget N] [-out opt.blif]
//	bddmin -spec - < corpus.txt
//
// With -all, every registered heuristic plus the lower bound is reported;
// with -exact (instances up to 20 don't-care minterms), the brute-force
// exact minimum is included. With -all and -workers > 1 (0 = GOMAXPROCS)
// the heuristics run concurrently, each on its own BDD manager rebuilt from
// the input (managers are not safe for concurrent use); sizes and reported
// covers are identical to a sequential run because BDD sizes are canonical.
//
// With -blif the instance comes from a logic network: the named internal
// node's function is minimized against the complement of its observability
// don't-care set ([f, ¬ODC], the synthesis-side source of incompletely
// specified functions). Without -node the first internal node with a
// non-trivial ODC is chosen.
//
// With -network the whole BLIF netlist is optimized instead of a single
// node: every internal node is minimized against its windowed compatible
// don't cares (package network) and substituted back when the rewrite
// shrinks it, sweeping to convergence. The run prints the per-sweep cost
// trajectory and the final miter verdict, exits nonzero if the miter
// fails, and -out writes the rewritten netlist. -window sets both the
// fanin and fanout window depth, -sweeps caps the convergence loop, and
// -node-budget bounds each node's window work (a tripped budget skips or
// degrades that node only).
//
// With `-spec -`, instances are read from stdin in the shared corpus
// format (see internal/problem): one per line, either a leaf-notation
// spec or an `@pla path [output]` / `@blif path [node]` file reference
// resolved against the working directory — the same files that drive the
// bddload generator. Each instance is minimized on a fresh manager and
// reported on one line (or one block with -all); -exact and -dot do not
// apply in batch mode.
//
// -trace streams pipeline events (heuristic applications, schedule
// windows, level-match rounds) live to stderr and prints the aggregated
// per-heuristic metrics table after the run; -trace-out additionally
// writes the event stream as JSONL. -cpuprofile/-memprofile write pprof
// profiles.
//
// -budget-nodes and -timeout put each minimization under a kernel
// resource budget: a run that trips its budget degrades gracefully to the
// best valid intermediate cover (at worst f itself) and the report line is
// annotated with the abort reason. Internal panics are caught at the top
// level and reported with the offending input (exit status 2).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"bddmin/internal/bdd"
	"bddmin/internal/core"
	"bddmin/internal/obs"
	"bddmin/internal/problem"
)

// currentInput describes the instance being processed, for the top-level
// panic report.
var currentInput string

// main only installs the crash handler: an internal panic (a kernel
// invariant violation, a malformed instance that slipped past parsing)
// becomes a short report naming the offending input instead of a raw
// stack trace, with a distinct exit status.
func main() {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "bddmin: internal error: %v\n", r)
			if currentInput != "" {
				fmt.Fprintf(os.Stderr, "bddmin: while processing %s\n", currentInput)
			}
			os.Exit(2)
		}
	}()
	run()
}

func run() {
	var (
		spec       = flag.String("spec", "", "function in leaf notation, e.g. \"d1 01\"; \"-\" reads a corpus from stdin, one instance per line")
		plaFile    = flag.String("pla", "", "read the instance from an espresso PLA file instead of -spec")
		plaOutput  = flag.Int("output", 0, "which PLA output to minimize")
		blifFile   = flag.String("blif", "", "read the instance from a BLIF netlist: minimize an internal node against its observability don't cares")
		nodeName   = flag.String("node", "", "with -blif, the internal node to minimize (default: first node with a non-trivial ODC)")
		heuristic  = flag.String("heuristic", "osm_bt", "heuristic name (const, restr, osm_td, osm_nv, osm_cp, osm_bt, tsm_td, tsm_cp, opt_lv, sched, robust)")
		all        = flag.Bool("all", false, "run every heuristic and the lower bound")
		exact      = flag.Bool("exact", false, "also compute the exact minimum by brute force")
		dotFile    = flag.String("dot", "", "write the minimized BDD to this DOT file")
		workersN   = flag.Int("workers", 1, "with -all, run heuristics on this many workers (one BDD manager each; 0 = GOMAXPROCS)")
		matchWork  = flag.Int("match-workers", 1, "fan level-matching pair matrices across this many concurrent match kernels (opt_lv, sched, robust; results are byte-identical for every setting)")
		trace      = flag.Bool("trace", false, "stream pipeline events to stderr and print the per-heuristic metrics table")
		traceOut   = flag.String("trace-out", "", "write the event stream as JSONL to this file")
		traceTimes = flag.Bool("trace-timings", false, "include nanosecond durations in -trace-out (off keeps traces byte-deterministic)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file")
		budgetN    = flag.Int("budget-nodes", 0, "abort a minimization beyond this many live BDD nodes, degrading to the best valid cover (0 = unbounded)")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget per minimization, e.g. 500ms (0 = none)")
		netMode    = flag.Bool("network", false, "with -blif, optimize the whole netlist against windowed compatible don't cares instead of minimizing one node")
		netWindow  = flag.Int("window", 2, "with -network, fanin and fanout depth of each node's window")
		netSweeps  = flag.Int("sweeps", 4, "with -network, cap on convergence-loop sweeps")
		netBudget  = flag.Uint64("node-budget", 0, "with -network, cap each node's window work at this many BDD nodes made (0 = unbounded)")
		netOut     = flag.String("out", "", "with -network, write the optimized BLIF to this file")
	)
	flag.Parse()
	if *spec == "" && *plaFile == "" && *blifFile == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	// The tracer fans out to every requested sink; nil when tracing is off,
	// which keeps the heuristics on their unobserved (allocation-free) path.
	var (
		metrics *obs.Metrics
		sinks   []obs.Tracer
	)
	if *trace {
		metrics = &obs.Metrics{}
		sinks = append(sinks, metrics, obs.NewProgress(os.Stderr))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		bw := bufio.NewWriter(f)
		jl := obs.NewJSONL(bw)
		jl.Timings = *traceTimes
		sinks = append(sinks, jl)
		defer func() {
			if err := jl.Err(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			bw.Flush()
			f.Close()
		}()
	}
	tracer := obs.Multi(sinks...)

	// mkBudget builds a fresh per-run kernel budget from the resource flags
	// (budgets carry per-run counters, so they are never shared across
	// workers); nil when no bound was requested keeps the unbudgeted path.
	mkBudget := func() *bdd.Budget {
		if *budgetN <= 0 && *timeout <= 0 {
			return nil
		}
		b := &bdd.Budget{MaxLiveNodes: *budgetN}
		if *timeout > 0 {
			b.Deadline = time.Now().Add(*timeout)
		}
		return b
	}

	if *netMode {
		runNetwork(*blifFile, *heuristic, *netWindow, *netSweeps, *netBudget, *timeout, *netOut, tracer)
		if metrics != nil {
			fmt.Println()
			metrics.Format(os.Stdout)
		}
		return
	}

	if *spec == "-" {
		runBatch(*heuristic, *all, *matchWork, tracer, mkBudget)
		if metrics != nil {
			fmt.Println()
			metrics.Format(os.Stdout)
		}
		return
	}

	prob := loadProblem(*spec, *plaFile, *plaOutput, *blifFile, *nodeName)
	currentInput = prob.Label
	n := prob.Vars
	m, in, err := prob.NewManager()
	if err != nil {
		fail(err)
	}
	fmt.Printf("instance [f, c] over %d variables: %s\n", n, core.FormatSpec(m, in, n))
	fmt.Printf("|f| = %d nodes, c_onset = %.1f%%\n\n", m.Size(in.F), m.Density(in.C)*100)
	if g, ok := in.Trivial(m); ok {
		fmt.Printf("trivial instance: cover is the constant %v\n", g == bdd.One)
		return
	}

	report := func(h core.Minimizer) bdd.Ref {
		h = core.WithMatchWorkers(h, *matchWork)
		g, ab := core.MinimizeAnytime(core.Instrument(h, tracer), m, in.F, in.C, mkBudget())
		if !in.Cover(m, g) {
			fmt.Fprintf(os.Stderr, "BUG: %s returned a non-cover\n", h.Name())
			os.Exit(1)
		}
		fmt.Printf("  %-8s size %3d   %s%s\n", h.Name(), m.Size(g),
			core.FormatSpec(m, core.ISF{F: g, C: bdd.One}, n), degraded(ab))
		return g
	}

	var result bdd.Ref
	haveResult := false
	if *all {
		if *workersN != 1 {
			runAllParallel(prob, n, *workersN, *matchWork, tracer, mkBudget)
			// The DOT export needs a Ref on the main manager; recompute the
			// selected heuristic here (sizes are canonical either way).
			if h := core.ByName(*heuristic); h != nil {
				result, _ = core.MinimizeAnytime(core.WithMatchWorkers(h, *matchWork), m, in.F, in.C, mkBudget())
				haveResult = true
			}
		} else {
			for _, h := range core.Registry() {
				g := report(h)
				if h.Name() == *heuristic || !haveResult {
					result = g
					haveResult = true
				}
			}
		}
		fmt.Printf("  %-8s size %3d\n", "low_bd", core.LowerBound(m, in.F, in.C, 1000))
	} else {
		h := core.ByName(*heuristic)
		if h == nil {
			fmt.Fprintf(os.Stderr, "unknown heuristic %q\n", *heuristic)
			os.Exit(1)
		}
		result = report(h)
		haveResult = true
	}
	if *exact {
		g, size := core.ExactMinimize(m, in.F, in.C, n)
		fmt.Printf("  %-8s size %3d   %s\n", "exact", size, core.FormatSpec(m, core.ISF{F: g, C: bdd.One}, n))
	}
	if metrics != nil {
		fmt.Println()
		metrics.Format(os.Stdout)
	}
	if *dotFile != "" && haveResult {
		f, err := os.Create(*dotFile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := m.WriteDot(f, map[string]bdd.Ref{"f": in.F, "c": in.C, "min": result}); err != nil {
			fail(err)
		}
		fmt.Printf("DOT written to %s\n", *dotFile)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
	}
}

// loadProblem resolves the input flags into a parsed instance through the
// shared loader (the same one the bddmind server and corpus files use).
func loadProblem(spec, plaFile string, plaOutput int, blifFile, nodeName string) *problem.Problem {
	switch {
	case plaFile != "":
		currentInput = fmt.Sprintf("-pla %s -output %d", plaFile, plaOutput)
		src, err := os.ReadFile(plaFile)
		if err != nil {
			fail(err)
		}
		p, err := problem.ParsePLA(string(src), plaOutput, plaFile)
		if err != nil {
			fail(err)
		}
		return p
	case blifFile != "":
		currentInput = fmt.Sprintf("-blif %s", blifFile)
		src, err := os.ReadFile(blifFile)
		if err != nil {
			fail(err)
		}
		p, err := problem.ParseBLIF(string(src), nodeName, blifFile)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: node %q against its observability don't cares\n", p.Network().Name, p.Node)
		return p
	}
	currentInput = fmt.Sprintf("-spec %q", spec)
	p, err := problem.FromSpec(spec)
	if err != nil {
		fail(err)
	}
	return p
}

// runBatch is `-spec -`: every stdin corpus line becomes one instance on a
// fresh manager, reported compactly. With all=true the full registry runs
// per instance (sequentially; batch throughput comes from the instance
// stream, not per-instance parallelism).
func runBatch(heuName string, all bool, matchWorkers int, tracer obs.Tracer, mkBudget func() *bdd.Budget) {
	probs, err := problem.LoadCorpus(os.Stdin, ".")
	if err != nil {
		fail(err)
	}
	var heus []core.Minimizer
	if all {
		heus = core.Registry()
	} else {
		h := core.ByName(heuName)
		if h == nil {
			fmt.Fprintf(os.Stderr, "unknown heuristic %q\n", heuName)
			os.Exit(1)
		}
		heus = []core.Minimizer{h}
	}
	for i := range heus {
		heus[i] = core.WithMatchWorkers(heus[i], matchWorkers)
	}
	for i, p := range probs {
		currentInput = p.Label
		m, in, err := p.NewManager()
		if err != nil {
			fail(err)
		}
		if g, ok := in.Trivial(m); ok {
			fmt.Printf("%3d  %-36s trivial: constant %v\n", i, p.Label, g == bdd.One)
			continue
		}
		for _, h := range heus {
			g, ab := core.MinimizeAnytime(core.Instrument(h, tracer), m, in.F, in.C, mkBudget())
			if !in.Cover(m, g) {
				fmt.Fprintf(os.Stderr, "BUG: %s returned a non-cover on %s\n", h.Name(), p.Label)
				os.Exit(1)
			}
			fmt.Printf("%3d  %-36s |f|=%4d  %-8s size %4d%s\n",
				i, p.Label, m.Size(in.F), h.Name(), m.Size(g), degraded(ab))
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// degraded renders the budget-abort annotation for a report line, empty
// when the run completed within its budget.
func degraded(ab core.AbortInfo) string {
	if !ab.Aborted {
		return ""
	}
	return fmt.Sprintf("  [degraded: budget %s at %s]", ab.Reason, ab.Phase)
}

// runAllParallel fans the registered heuristics out over a worker pool, one
// fresh manager per heuristic run (managers are not goroutine-safe, so
// nothing is shared). Results print in registry order, identical to the
// sequential report. Trace events are buffered per heuristic and replayed
// into the tracer in registry order after all workers finish, so the
// merged stream matches a sequential run's.
func runAllParallel(prob *problem.Problem, n, workers, matchWorkers int, tracer obs.Tracer, mkBudget func() *bdd.Budget) {
	heus := core.Registry()
	for i := range heus {
		heus[i] = core.WithMatchWorkers(heus[i], matchWorkers)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(heus) {
		workers = len(heus)
	}
	type outcome struct {
		size int
		text string
		err  error
	}
	results := make([]outcome, len(heus))
	buffers := make([]*obs.Buffer, len(heus))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				m, in, err := prob.NewManager()
				if err != nil {
					results[i] = outcome{err: err}
					continue
				}
				h := heus[i]
				if tracer != nil {
					buffers[i] = &obs.Buffer{}
					h = core.Instrument(h, buffers[i])
				}
				g, ab := core.MinimizeAnytime(h, m, in.F, in.C, mkBudget())
				if !in.Cover(m, g) {
					results[i] = outcome{err: fmt.Errorf("BUG: %s returned a non-cover", h.Name())}
					continue
				}
				results[i] = outcome{
					size: m.Size(g),
					text: core.FormatSpec(m, core.ISF{F: g, C: bdd.One}, n) + degraded(ab),
				}
			}
		}()
	}
	for i := range heus {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, h := range heus {
		if results[i].err != nil {
			fmt.Fprintln(os.Stderr, results[i].err)
			os.Exit(1)
		}
		if buffers[i] != nil {
			buffers[i].ReplayTo(tracer)
		}
		fmt.Printf("  %-8s size %3d   %s\n", h.Name(), results[i].size, results[i].text)
	}
}

// Command bddmin minimizes an incompletely specified Boolean function
// given in the paper's leaf notation and reports the covers found by the
// heuristics of the framework.
//
// The spec lists the values of the function on the leaves of the binary
// decision tree left to right, 'd' marking don't cares; e.g. the paper's
// Figure 1 examples are written like "d1 01 1d 01".
//
// Usage:
//
//	bddmin -spec "d1 01 1d 01" [-heuristic osm_bt] [-all] [-exact] [-dot out.dot]
//	       [-workers N] [-trace] [-trace-out trace.jsonl]
//	       [-budget-nodes N] [-timeout D]
//	bddmin -pla file.pla [-output K] ...
//	bddmin -blif file.blif [-node NAME] ...
//
// With -all, every registered heuristic plus the lower bound is reported;
// with -exact (instances up to 20 don't-care minterms), the brute-force
// exact minimum is included. With -all and -workers > 1 (0 = GOMAXPROCS)
// the heuristics run concurrently, each on its own BDD manager rebuilt from
// the input (managers are not safe for concurrent use); sizes and reported
// covers are identical to a sequential run because BDD sizes are canonical.
//
// With -blif the instance comes from a logic network: the named internal
// node's function is minimized against the complement of its observability
// don't-care set ([f, ¬ODC], the synthesis-side source of incompletely
// specified functions). Without -node the first internal node with a
// non-trivial ODC is chosen.
//
// -trace streams pipeline events (heuristic applications, schedule
// windows, level-match rounds) live to stderr and prints the aggregated
// per-heuristic metrics table after the run; -trace-out additionally
// writes the event stream as JSONL. -cpuprofile/-memprofile write pprof
// profiles.
//
// -budget-nodes and -timeout put each minimization under a kernel
// resource budget: a run that trips its budget degrades gracefully to the
// best valid intermediate cover (at worst f itself) and the report line is
// annotated with the abort reason. Internal panics are caught at the top
// level and reported with the offending input (exit status 2).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"bddmin/internal/bdd"
	"bddmin/internal/core"
	"bddmin/internal/logic"
	"bddmin/internal/obs"
)

// currentInput describes the instance being processed, for the top-level
// panic report.
var currentInput string

// main only installs the crash handler: an internal panic (a kernel
// invariant violation, a malformed instance that slipped past parsing)
// becomes a short report naming the offending input instead of a raw
// stack trace, with a distinct exit status.
func main() {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "bddmin: internal error: %v\n", r)
			if currentInput != "" {
				fmt.Fprintf(os.Stderr, "bddmin: while processing %s\n", currentInput)
			}
			os.Exit(2)
		}
	}()
	run()
}

func run() {
	var (
		spec       = flag.String("spec", "", "function in leaf notation, e.g. \"d1 01\"")
		plaFile    = flag.String("pla", "", "read the instance from an espresso PLA file instead of -spec")
		plaOutput  = flag.Int("output", 0, "which PLA output to minimize")
		blifFile   = flag.String("blif", "", "read the instance from a BLIF netlist: minimize an internal node against its observability don't cares")
		nodeName   = flag.String("node", "", "with -blif, the internal node to minimize (default: first node with a non-trivial ODC)")
		heuristic  = flag.String("heuristic", "osm_bt", "heuristic name (const, restr, osm_td, osm_nv, osm_cp, osm_bt, tsm_td, tsm_cp, opt_lv, sched, robust)")
		all        = flag.Bool("all", false, "run every heuristic and the lower bound")
		exact      = flag.Bool("exact", false, "also compute the exact minimum by brute force")
		dotFile    = flag.String("dot", "", "write the minimized BDD to this DOT file")
		workersN   = flag.Int("workers", 1, "with -all, run heuristics on this many workers (one BDD manager each; 0 = GOMAXPROCS)")
		trace      = flag.Bool("trace", false, "stream pipeline events to stderr and print the per-heuristic metrics table")
		traceOut   = flag.String("trace-out", "", "write the event stream as JSONL to this file")
		traceTimes = flag.Bool("trace-timings", false, "include nanosecond durations in -trace-out (off keeps traces byte-deterministic)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file")
		budgetN    = flag.Int("budget-nodes", 0, "abort a minimization beyond this many live BDD nodes, degrading to the best valid cover (0 = unbounded)")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget per minimization, e.g. 500ms (0 = none)")
	)
	flag.Parse()
	if *spec == "" && *plaFile == "" && *blifFile == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	// The tracer fans out to every requested sink; nil when tracing is off,
	// which keeps the heuristics on their unobserved (allocation-free) path.
	var (
		metrics *obs.Metrics
		sinks   []obs.Tracer
	)
	if *trace {
		metrics = &obs.Metrics{}
		sinks = append(sinks, metrics, obs.NewProgress(os.Stderr))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		bw := bufio.NewWriter(f)
		jl := obs.NewJSONL(bw)
		jl.Timings = *traceTimes
		sinks = append(sinks, jl)
		defer func() {
			if err := jl.Err(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			bw.Flush()
			f.Close()
		}()
	}
	tracer := obs.Multi(sinks...)

	var (
		pla    *logic.PLA
		net    *logic.Network
		target *logic.Node
		n      int
	)
	switch {
	case *plaFile != "":
		currentInput = fmt.Sprintf("-pla %s -output %d", *plaFile, *plaOutput)
		file, err := os.Open(*plaFile)
		if err != nil {
			fail(err)
		}
		parsed, err := logic.ParsePLA(file)
		file.Close()
		if err != nil {
			fail(err)
		}
		pla = parsed
		n = pla.NumInputs
	case *blifFile != "":
		currentInput = fmt.Sprintf("-blif %s", *blifFile)
		file, err := os.Open(*blifFile)
		if err != nil {
			fail(err)
		}
		parsed, err := logic.ParseBLIF(file)
		file.Close()
		if err != nil {
			fail(err)
		}
		net = parsed
		n = net.PrimaryInputCount() + net.LatchCount()
		target, err = pickNode(net, *nodeName)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: node %q against its observability don't cares\n", net.Name, target.Name)
	default:
		currentInput = fmt.Sprintf("-spec %q", *spec)
		clean := strings.ReplaceAll(strings.ReplaceAll(*spec, " ", ""), "\t", "")
		for 1<<n < len(clean) {
			n++
		}
	}
	// mkBudget builds a fresh per-run kernel budget from the resource flags
	// (budgets carry per-run counters, so they are never shared across
	// workers); nil when no bound was requested keeps the unbudgeted path.
	mkBudget := func() *bdd.Budget {
		if *budgetN <= 0 && *timeout <= 0 {
			return nil
		}
		b := &bdd.Budget{MaxLiveNodes: *budgetN}
		if *timeout > 0 {
			b.Deadline = time.Now().Add(*timeout)
		}
		return b
	}
	// rebuild constructs the instance on a fresh manager; the parallel path
	// gives every worker its own (managers are single-goroutine).
	rebuild := func() (*bdd.Manager, core.ISF, error) {
		m := bdd.New(n)
		switch {
		case pla != nil:
			vars := make([]bdd.Var, n)
			for i := range vars {
				vars[i] = bdd.Var(i)
				if i < len(pla.InputNames) {
					m.SetVarName(vars[i], pla.InputNames[i])
				}
			}
			f, c, err := pla.OutputISF(m, vars, *plaOutput)
			if err != nil {
				return nil, core.ISF{}, err
			}
			return m, core.ISF{F: f, C: c}, nil
		case net != nil:
			f, c, err := logic.NodeISF(m, net, blifEnv(m, net), target)
			if err != nil {
				return nil, core.ISF{}, err
			}
			return m, core.ISF{F: f, C: c}, nil
		}
		in, err := core.ParseSpec(m, *spec)
		return m, in, err
	}
	m, in, err := rebuild()
	if err != nil {
		fail(err)
	}
	fmt.Printf("instance [f, c] over %d variables: %s\n", n, core.FormatSpec(m, in, n))
	fmt.Printf("|f| = %d nodes, c_onset = %.1f%%\n\n", m.Size(in.F), m.Density(in.C)*100)
	if g, ok := in.Trivial(m); ok {
		fmt.Printf("trivial instance: cover is the constant %v\n", g == bdd.One)
		return
	}

	report := func(h core.Minimizer) bdd.Ref {
		g, ab := core.MinimizeAnytime(instrument(h, tracer), m, in.F, in.C, mkBudget())
		if !in.Cover(m, g) {
			fmt.Fprintf(os.Stderr, "BUG: %s returned a non-cover\n", h.Name())
			os.Exit(1)
		}
		fmt.Printf("  %-8s size %3d   %s%s\n", h.Name(), m.Size(g),
			core.FormatSpec(m, core.ISF{F: g, C: bdd.One}, n), degraded(ab))
		return g
	}

	var result bdd.Ref
	haveResult := false
	if *all {
		if *workersN != 1 {
			runAllParallel(rebuild, n, *workersN, tracer, mkBudget)
			// The DOT export needs a Ref on the main manager; recompute the
			// selected heuristic here (sizes are canonical either way).
			if h := core.ByName(*heuristic); h != nil {
				result, _ = core.MinimizeAnytime(h, m, in.F, in.C, mkBudget())
				haveResult = true
			}
		} else {
			for _, h := range core.Registry() {
				g := report(h)
				if h.Name() == *heuristic || !haveResult {
					result = g
					haveResult = true
				}
			}
		}
		fmt.Printf("  %-8s size %3d\n", "low_bd", core.LowerBound(m, in.F, in.C, 1000))
	} else {
		h := core.ByName(*heuristic)
		if h == nil {
			fmt.Fprintf(os.Stderr, "unknown heuristic %q\n", *heuristic)
			os.Exit(1)
		}
		result = report(h)
		haveResult = true
	}
	if *exact {
		g, size := core.ExactMinimize(m, in.F, in.C, n)
		fmt.Printf("  %-8s size %3d   %s\n", "exact", size, core.FormatSpec(m, core.ISF{F: g, C: bdd.One}, n))
	}
	if metrics != nil {
		fmt.Println()
		metrics.Format(os.Stdout)
	}
	if *dotFile != "" && haveResult {
		f, err := os.Create(*dotFile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := m.WriteDot(f, map[string]bdd.Ref{"f": in.F, "c": in.C, "min": result}); err != nil {
			fail(err)
		}
		fmt.Printf("DOT written to %s\n", *dotFile)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// degraded renders the budget-abort annotation for a report line, empty
// when the run completed within its budget.
func degraded(ab core.AbortInfo) string {
	if !ab.Aborted {
		return ""
	}
	return fmt.Sprintf("  [degraded: budget %s at %s]", ab.Reason, ab.Phase)
}

// instrument connects a heuristic to the tracer. Minimizers that stream
// their own events get their Trace field set — sibling heuristics emit
// heuristic events with sibling-match counts themselves (wrapping them too
// would double-count in the metrics table), while the scheduler and
// opt_lv emit window/level-round events and still want the overall
// summary event from the generic wrapper. Everything else is wrapped.
func instrument(h core.Minimizer, tr obs.Tracer) core.Minimizer {
	if tr == nil {
		return h
	}
	switch t := h.(type) {
	case *core.SiblingHeuristic:
		t.Trace = tr
		return h
	case *core.Scheduler:
		t.Trace = tr
	case *core.OptLv:
		t.Trace = tr
	}
	return core.Traced(h, tr)
}

// blifEnv binds the network's primary inputs and latch outputs (present-
// state variables) to BDD variables, in declaration order — the same
// binding the fsm compiler uses.
func blifEnv(m *bdd.Manager, net *logic.Network) logic.Env {
	env := logic.Env{}
	v := 0
	for _, in := range net.Inputs {
		env[in] = m.MkVar(bdd.Var(v))
		m.SetVarName(bdd.Var(v), in.Name)
		v++
	}
	for _, l := range net.Latches {
		env[l.Output] = m.MkVar(bdd.Var(v))
		m.SetVarName(bdd.Var(v), l.Output.Name)
		v++
	}
	return env
}

// pickNode resolves -node, or scans for the first internal node whose ODC
// set is non-trivial (so the demo instance has real freedom to exploit).
func pickNode(net *logic.Network, name string) (*logic.Node, error) {
	internal := func(nd *logic.Node) bool {
		return nd.Type != logic.Input && nd.Type != logic.Const
	}
	if name != "" {
		for _, nd := range net.Nodes() {
			if nd.Name == name {
				if !internal(nd) {
					return nil, fmt.Errorf("node %q is not an internal gate", name)
				}
				return nd, nil
			}
		}
		return nil, fmt.Errorf("no node named %q in %s", name, net.Name)
	}
	scratch := bdd.New(net.PrimaryInputCount() + net.LatchCount())
	env := blifEnv(scratch, net)
	var first *logic.Node
	for _, nd := range net.Nodes() {
		if !internal(nd) {
			continue
		}
		if first == nil {
			first = nd
		}
		f, c, err := logic.NodeISF(scratch, net, env, nd)
		if err != nil {
			return nil, err
		}
		in := core.ISF{F: f, C: c}
		if _, trivial := in.Trivial(scratch); !trivial && c != bdd.One {
			return nd, nil
		}
	}
	if first == nil {
		return nil, fmt.Errorf("%s has no internal nodes", net.Name)
	}
	return first, nil // every ODC trivial; fall back to the first gate
}

// runAllParallel fans the registered heuristics out over a worker pool, one
// fresh manager per heuristic run (managers are not goroutine-safe, so
// nothing is shared). Results print in registry order, identical to the
// sequential report. Trace events are buffered per heuristic and replayed
// into the tracer in registry order after all workers finish, so the
// merged stream matches a sequential run's.
func runAllParallel(rebuild func() (*bdd.Manager, core.ISF, error), n, workers int, tracer obs.Tracer, mkBudget func() *bdd.Budget) {
	heus := core.Registry()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(heus) {
		workers = len(heus)
	}
	type outcome struct {
		size int
		text string
		err  error
	}
	results := make([]outcome, len(heus))
	buffers := make([]*obs.Buffer, len(heus))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				m, in, err := rebuild()
				if err != nil {
					results[i] = outcome{err: err}
					continue
				}
				h := heus[i]
				if tracer != nil {
					buffers[i] = &obs.Buffer{}
					h = instrument(h, buffers[i])
				}
				g, ab := core.MinimizeAnytime(h, m, in.F, in.C, mkBudget())
				if !in.Cover(m, g) {
					results[i] = outcome{err: fmt.Errorf("BUG: %s returned a non-cover", h.Name())}
					continue
				}
				results[i] = outcome{
					size: m.Size(g),
					text: core.FormatSpec(m, core.ISF{F: g, C: bdd.One}, n) + degraded(ab),
				}
			}
		}()
	}
	for i := range heus {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, h := range heus {
		if results[i].err != nil {
			fmt.Fprintln(os.Stderr, results[i].err)
			os.Exit(1)
		}
		if buffers[i] != nil {
			buffers[i].ReplayTo(tracer)
		}
		fmt.Printf("  %-8s size %3d   %s\n", h.Name(), results[i].size, results[i].text)
	}
}

// Command bddmin minimizes an incompletely specified Boolean function
// given in the paper's leaf notation and reports the covers found by the
// heuristics of the framework.
//
// The spec lists the values of the function on the leaves of the binary
// decision tree left to right, 'd' marking don't cares; e.g. the paper's
// Figure 1 examples are written like "d1 01 1d 01".
//
// Usage:
//
//	bddmin -spec "d1 01 1d 01" [-heuristic osm_bt] [-all] [-exact] [-dot out.dot]
//	       [-workers N]
//
// With -all, every registered heuristic plus the lower bound is reported;
// with -exact (instances up to 20 don't-care minterms), the brute-force
// exact minimum is included. With -all and -workers > 1 (0 = GOMAXPROCS)
// the heuristics run concurrently, each on its own BDD manager rebuilt from
// the input (managers are not safe for concurrent use); sizes and reported
// covers are identical to a sequential run because BDD sizes are canonical.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"bddmin/internal/bdd"
	"bddmin/internal/core"
	"bddmin/internal/logic"
)

func main() {
	var (
		spec      = flag.String("spec", "", "function in leaf notation, e.g. \"d1 01\"")
		plaFile   = flag.String("pla", "", "read the instance from an espresso PLA file instead of -spec")
		plaOutput = flag.Int("output", 0, "which PLA output to minimize")
		heuristic = flag.String("heuristic", "osm_bt", "heuristic name (const, restr, osm_td, osm_nv, osm_cp, osm_bt, tsm_td, tsm_cp, opt_lv, sched, robust)")
		all       = flag.Bool("all", false, "run every heuristic and the lower bound")
		exact     = flag.Bool("exact", false, "also compute the exact minimum by brute force")
		dotFile   = flag.String("dot", "", "write the minimized BDD to this DOT file")
		workersN  = flag.Int("workers", 1, "with -all, run heuristics on this many workers (one BDD manager each; 0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *spec == "" && *plaFile == "" {
		flag.Usage()
		os.Exit(2)
	}
	var (
		pla *logic.PLA
		n   int
	)
	if *plaFile != "" {
		file, err := os.Open(*plaFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		parsed, err := logic.ParsePLA(file)
		file.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pla = parsed
		n = pla.NumInputs
	} else {
		clean := strings.ReplaceAll(strings.ReplaceAll(*spec, " ", ""), "\t", "")
		for 1<<n < len(clean) {
			n++
		}
	}
	// rebuild constructs the instance on a fresh manager; the parallel path
	// gives every worker its own (managers are single-goroutine).
	rebuild := func() (*bdd.Manager, core.ISF, error) {
		m := bdd.New(n)
		if pla != nil {
			vars := make([]bdd.Var, n)
			for i := range vars {
				vars[i] = bdd.Var(i)
				if i < len(pla.InputNames) {
					m.SetVarName(vars[i], pla.InputNames[i])
				}
			}
			f, c, err := pla.OutputISF(m, vars, *plaOutput)
			if err != nil {
				return nil, core.ISF{}, err
			}
			return m, core.ISF{F: f, C: c}, nil
		}
		in, err := core.ParseSpec(m, *spec)
		return m, in, err
	}
	m, in, err := rebuild()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("instance [f, c] over %d variables: %s\n", n, core.FormatSpec(m, in, n))
	fmt.Printf("|f| = %d nodes, c_onset = %.1f%%\n\n", m.Size(in.F), m.Density(in.C)*100)
	if g, ok := in.Trivial(m); ok {
		fmt.Printf("trivial instance: cover is the constant %v\n", g == bdd.One)
		return
	}

	report := func(h core.Minimizer) bdd.Ref {
		g := h.Minimize(m, in.F, in.C)
		if !in.Cover(m, g) {
			fmt.Fprintf(os.Stderr, "BUG: %s returned a non-cover\n", h.Name())
			os.Exit(1)
		}
		fmt.Printf("  %-8s size %3d   %s\n", h.Name(), m.Size(g), core.FormatSpec(m, core.ISF{F: g, C: bdd.One}, n))
		return g
	}

	var result bdd.Ref
	haveResult := false
	if *all {
		if *workersN != 1 {
			runAllParallel(rebuild, n, *workersN)
			// The DOT export needs a Ref on the main manager; recompute the
			// selected heuristic here (sizes are canonical either way).
			if h := core.ByName(*heuristic); h != nil {
				result = h.Minimize(m, in.F, in.C)
				haveResult = true
			}
		} else {
			for _, h := range core.Registry() {
				g := report(h)
				if h.Name() == *heuristic || !haveResult {
					result = g
					haveResult = true
				}
			}
		}
		fmt.Printf("  %-8s size %3d\n", "low_bd", core.LowerBound(m, in.F, in.C, 1000))
	} else {
		h := core.ByName(*heuristic)
		if h == nil {
			fmt.Fprintf(os.Stderr, "unknown heuristic %q\n", *heuristic)
			os.Exit(1)
		}
		result = report(h)
		haveResult = true
	}
	if *exact {
		g, size := core.ExactMinimize(m, in.F, in.C, n)
		fmt.Printf("  %-8s size %3d   %s\n", "exact", size, core.FormatSpec(m, core.ISF{F: g, C: bdd.One}, n))
	}
	if *dotFile != "" && haveResult {
		f, err := os.Create(*dotFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := m.WriteDot(f, map[string]bdd.Ref{"f": in.F, "c": in.C, "min": result}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("DOT written to %s\n", *dotFile)
	}
}

// runAllParallel fans the registered heuristics out over a worker pool, one
// fresh manager per heuristic run (managers are not goroutine-safe, so
// nothing is shared). Results print in registry order, identical to the
// sequential report.
func runAllParallel(rebuild func() (*bdd.Manager, core.ISF, error), n, workers int) {
	heus := core.Registry()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(heus) {
		workers = len(heus)
	}
	type outcome struct {
		size int
		text string
		err  error
	}
	results := make([]outcome, len(heus))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				m, in, err := rebuild()
				if err != nil {
					results[i] = outcome{err: err}
					continue
				}
				h := heus[i]
				g := h.Minimize(m, in.F, in.C)
				if !in.Cover(m, g) {
					results[i] = outcome{err: fmt.Errorf("BUG: %s returned a non-cover", h.Name())}
					continue
				}
				results[i] = outcome{
					size: m.Size(g),
					text: core.FormatSpec(m, core.ISF{F: g, C: bdd.One}, n),
				}
			}
		}()
	}
	for i := range heus {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, h := range heus {
		if results[i].err != nil {
			fmt.Fprintln(os.Stderr, results[i].err)
			os.Exit(1)
		}
		fmt.Printf("  %-8s size %3d   %s\n", h.Name(), results[i].size, results[i].text)
	}
}

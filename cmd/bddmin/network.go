package main

import (
	"errors"
	"fmt"
	"os"
	"time"

	"bddmin/internal/core"
	"bddmin/internal/logic"
	"bddmin/internal/network"
	"bddmin/internal/obs"
)

// runNetwork is the -network mode: whole-network don't-care optimization of
// a BLIF netlist (package network) instead of single-node minimization. It
// prints the per-sweep convergence trajectory and the miter verdict, and
// exits nonzero if the final equivalence check fails.
func runNetwork(blifFile, heuName string, window, sweeps int, nodeBudget uint64,
	timeout time.Duration, outFile string, tracer obs.Tracer) {

	if blifFile == "" {
		fail(errors.New("bddmin: -network requires -blif FILE"))
	}
	currentInput = fmt.Sprintf("-network -blif %s", blifFile)
	src, err := os.ReadFile(blifFile)
	if err != nil {
		fail(err)
	}
	net, err := logic.ParseBLIFString(string(src))
	if err != nil {
		fail(err)
	}
	h := core.ByName(heuName)
	if h == nil {
		fmt.Fprintf(os.Stderr, "unknown heuristic %q\n", heuName)
		os.Exit(1)
	}
	opts := network.Options{
		Heuristic:    core.Instrument(h, tracer),
		FaninLevels:  window,
		FanoutLevels: window,
		MaxSweeps:    sweeps,
		NodeBudget:   nodeBudget,
		Trace:        tracer,
	}
	if timeout > 0 {
		opts.Deadline = time.Now().Add(timeout)
	}

	res, miterErr := network.Optimize(net, opts)
	fmt.Printf("%s: %d internal nodes, cost %d (heuristic %s, window %d)\n",
		net.Name, res.InitialNodes, res.InitialCost, h.Name(), window)
	for i, s := range res.Sweeps {
		fmt.Printf("  sweep %d: cost %d, nodes %d, rewrites %d, aborts %d, skipped %d\n",
			i+1, s.Cost, s.Nodes, s.Rewrites, s.Aborts, s.Skipped)
	}
	if miterErr != nil {
		fmt.Printf("miter: FAILED: %v\n", miterErr)
		os.Exit(1)
	}
	fmt.Println("miter: equivalent")
	state := "sweep cap reached"
	if res.Converged {
		state = "converged"
	}
	fmt.Printf("optimized: nodes %d -> %d, cost %d -> %d (%s, %d rewrites)\n",
		res.InitialNodes, res.FinalNodes, res.InitialCost, res.FinalCost, state, res.Rewrites)

	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := logic.WriteBLIF(f, net); err != nil {
			fail(err)
		}
		fmt.Printf("optimized BLIF written to %s\n", outFile)
	}
}

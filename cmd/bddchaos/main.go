// Command bddchaos is the deterministic chaos scenario runner for the
// multi-node minimization service: it boots an in-process fleet of real
// bddmind backends, puts one of them behind a faultnet proxy with a
// scripted fault schedule (its /healthz stays clean, so the failure is
// grey — only the router's in-band machinery can catch it), fronts the
// fleet with an in-process bddrouter configured for grey-failure
// tolerance, drives closed-loop verified load through it, and asserts
// the chaos invariants:
//
//  1. no request unaccounted for — completed + errored == issued;
//  2. no invalid cover ever returned — zero client-side verify
//     failures (f·c ≤ g ≤ f + ¬c re-checked against every response);
//  3. every end-to-end latency bounded by the request deadline
//     (-timeout-ms) plus -slack.
//
// Faults are a pure function of the request sequence number (see
// internal/faultnet), so a scenario is a reproducible test case, not a
// lucky observation.
//
// Usage:
//
//	bddchaos [-scenario stall500] [-backends 3] [-n 200] [-c 4]
//	         [-timeout-ms 3000] [-slack 2.5s] [-shards 2]
//	         [-attempt-timeout 200ms] [-hedge-delay 0]
//	         [-breaker-threshold 3] [-breaker-cooldown 250ms]
//
// Scenarios (the faulted member is always the first backend):
//
//	baseline    no faults — the control run
//	stall       every request to the faulted member stalls forever;
//	            the breaker must contain it for the whole run
//	stall500    scripted grey window: stalls, then injected 500s, then
//	            recovery — the CI smoke scenario; after the load the
//	            runner waits for the breaker to close again and
//	            requires both transitions
//	grey-mixed  rotating stall / 500 / corrupt-JSON / added-latency
//	            faults on a fixed cadence
//
// The run ends by printing the router's /metrics document (one line,
// prefixed "bddchaos: router metrics:") so transitions are greppable.
// Exit status: 0 all invariants hold, 1 configuration or boot trouble,
// 2 invariant violated.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"bddmin/internal/faultnet"
	"bddmin/internal/problem"
	"bddmin/internal/route"
	"bddmin/internal/serve"
)

func main() {
	var (
		scenario    = flag.String("scenario", "stall500", "fault scenario: baseline | stall | stall500 | grey-mixed")
		backends    = flag.Int("backends", 3, "fleet size (first member is the faulted one)")
		n           = flag.Int("n", 200, "total requests to complete")
		c           = flag.Int("c", 4, "closed-loop concurrency")
		timeoutMs   = flag.Int("timeout-ms", 3000, "per-request deadline (the latency bound under test)")
		slack       = flag.Duration("slack", 2500*time.Millisecond, "allowed latency above the deadline (client-side scheduling)")
		shards      = flag.Int("shards", 2, "worker shards per backend")
		attemptTO   = flag.Duration("attempt-timeout", 200*time.Millisecond, "router per-attempt forward timeout")
		hedgeDelay  = flag.Duration("hedge-delay", 0, "router hedge delay (0 = off)")
		brThreshold = flag.Int("breaker-threshold", 3, "router breaker threshold")
		brCooldown  = flag.Duration("breaker-cooldown", 250*time.Millisecond, "router breaker cooldown")
	)
	flag.Parse()
	if *backends < 2 {
		fail(fmt.Errorf("bddchaos: need at least 2 backends for failover, got %d", *backends))
	}
	sched, wantBreaker, wantClose := schedule(*scenario, *brThreshold)
	if sched == nil {
		fail(fmt.Errorf("bddchaos: unknown scenario %q", *scenario))
	}

	// Boot the fleet: real bddmind servers on real listeners, the first
	// one reached only through the fault proxy.
	fleet := make([]*member, *backends)
	for i := range fleet {
		m, err := startMember(*shards)
		if err != nil {
			fail(err)
		}
		defer m.stop()
		fleet[i] = m
	}
	proxy, err := faultnet.New(fleet[0].url, sched)
	if err != nil {
		fail(err)
	}
	defer proxy.Close()
	urls := make([]string, *backends)
	urls[0] = proxy.URL()
	for i := 1; i < *backends; i++ {
		urls[i] = fleet[i].url
	}

	rt := route.New(route.Config{
		Backends:         urls,
		ProbeInterval:    50 * time.Millisecond,
		AttemptTimeout:   *attemptTO,
		HedgeDelay:       *hedgeDelay,
		BreakerThreshold: *brThreshold,
		BreakerCooldown:  *brCooldown,
		RetryBackoff:     2 * time.Millisecond,
		RetryBudgetMax:   4 * *n,
		RetryBudgetRatio: 1,
		HTTP: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 32,
		}},
	})
	rt.Start()
	defer rt.Close()
	frontLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	front := &http.Server{Handler: rt.Handler()}
	go func() { _ = front.Serve(frontLis) }()
	defer front.Close()
	frontURL := "http://" + frontLis.Addr().String()

	// Half the corpus is owned by the faulted member — the scripted
	// schedule is guaranteed traffic — and half by the rest of the ring.
	probs, err := corpus(urls, 4)
	if err != nil {
		fail(err)
	}
	fmt.Printf("bddchaos: scenario %s, %d backends (1 faulted), %d requests at concurrency %d, deadline %dms\n",
		*scenario, *backends, *n, *c, *timeoutMs)

	started := time.Now()
	stats, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		Client:      &serve.Client{Base: frontURL},
		Problems:    serve.Refs(probs, ""),
		Requests:    *n,
		Concurrency: *c,
		TimeoutMs:   *timeoutMs,
		Verify:      true,
	})
	if err != nil {
		fail(err)
	}

	// Recovery phase: scenarios whose schedule ends in clean behavior
	// must show the breaker closing again — the half-open probe proves
	// the backend is readmitted to first-choice placement.
	if wantClose {
		awaitBreakerClose(rt, proxy.URL(), &serve.Client{Base: frontURL}, probs)
	}

	final := rt.Metrics()
	victim := backendRow(final, proxy.URL())
	fmt.Printf("bddchaos: %d completed, %d errors in %s; statuses %v; faults injected %v\n",
		stats.Requests, stats.ErrorCount, time.Since(started).Round(time.Millisecond), stats.StatusCounts, proxy.Counts())
	fmt.Printf("bddchaos: verify failures: %d\n", len(stats.VerifyFails))
	fmt.Printf("bddchaos: victim breaker state %s, opens %d, closes %d, timeouts %d, retried 5xx %d, corrupt %d\n",
		victim.BreakerState, victim.BreakerOpens, victim.BreakerCloses, victim.Timeouts, victim.Retried5xx, victim.Corrupt)
	if raw, err := json.Marshal(final); err == nil {
		fmt.Printf("bddchaos: router metrics: %s\n", raw)
	}

	violated := false
	violate := func(format string, args ...any) {
		violated = true
		fmt.Fprintf(os.Stderr, "bddchaos: INVARIANT VIOLATED: "+format+"\n", args...)
	}
	if got := stats.Requests + stats.ErrorCount; got != *n {
		violate("%d completed + %d errors = %d, issued %d — requests unaccounted for",
			stats.Requests, stats.ErrorCount, got, *n)
	}
	if len(stats.VerifyFails) > 0 {
		violate("%d covers failed client-side verification; first: %s", len(stats.VerifyFails), stats.VerifyFails[0])
	}
	bound := time.Duration(*timeoutMs)*time.Millisecond + *slack
	for _, lat := range stats.Latencies {
		if lat > bound {
			violate("latency %v exceeds deadline %dms + slack %v", lat, *timeoutMs, *slack)
			break
		}
	}
	if wantBreaker && victim.BreakerOpens < 1 {
		violate("scenario %s never opened the victim's circuit: %+v", *scenario, victim)
	}
	if wantClose && victim.BreakerCloses < 1 {
		violate("scenario %s recovered but the circuit never closed: %+v", *scenario, victim)
	}
	if violated {
		os.Exit(2)
	}
	fmt.Println("bddchaos: all invariants hold")
}

// schedule maps a scenario name to its fault schedule and which breaker
// transitions the run must exhibit.
func schedule(name string, threshold int) (sched faultnet.Schedule, wantBreaker, wantClose bool) {
	t := uint64(threshold)
	switch name {
	case "baseline":
		return faultnet.Clean{}, false, false
	case "stall":
		return faultnet.EveryNth{N: 1, Fault: faultnet.Fault{Kind: faultnet.Stall}}, true, false
	case "stall500":
		// Exactly enough stalls to open the circuit, then 500s on the
		// half-open probes, then clean recovery.
		return faultnet.Script{
			{From: 0, To: t, Fault: faultnet.Fault{Kind: faultnet.Stall}},
			{From: t, To: t + 5, Fault: faultnet.Fault{Kind: faultnet.Inject500}},
		}, true, true
	case "grey-mixed":
		return greyMixed{}, true, false
	}
	return nil, false, false
}

// greyMixed rotates fault kinds on a fixed cadence: of every 8 work
// requests, one stalls, one 500s, one is corrupted and one is slowed;
// the rest pass.
type greyMixed struct{}

func (greyMixed) FaultFor(seq uint64) faultnet.Fault {
	switch seq % 8 {
	case 1:
		return faultnet.Fault{Kind: faultnet.Stall}
	case 3:
		return faultnet.Fault{Kind: faultnet.Inject500}
	case 5:
		return faultnet.Fault{Kind: faultnet.Corrupt}
	case 7:
		return faultnet.Fault{Kind: faultnet.Latency, Delay: 300 * time.Millisecond}
	}
	return faultnet.Fault{Kind: faultnet.Pass}
}

// member is one in-process bddmind on a real TCP listener.
type member struct {
	srv *serve.Server
	hs  *http.Server
	url string
}

func startMember(shards int) (*member, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := serve.New(serve.Config{Shards: shards, QueueDepth: 128})
	s.Start()
	m := &member{srv: s, hs: &http.Server{Handler: s.Handler()}, url: "http://" + lis.Addr().String()}
	go func() { _ = m.hs.Serve(lis) }()
	return m, nil
}

func (m *member) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = m.srv.Drain(ctx)
	_ = m.hs.Close()
}

// corpus builds a spec corpus with n instances owned by the faulted
// backend (ring index 0) and n owned by the rest, using the same ring
// the router builds so placement matches exactly.
func corpus(urls []string, n int) ([]*problem.Problem, error) {
	ring := route.NewRing(urls, route.DefaultVirtualNodes)
	groups := []string{"01", "10", "0d", "d0", "1d", "d1", "00", "11"}
	var victims, others []*problem.Problem
	for _, a := range groups {
		for _, b := range groups {
			for _, c := range groups {
				for _, d := range groups {
					if len(victims) >= n && len(others) >= n {
						return append(victims[:n], others[:n]...), nil
					}
					p, err := problem.FromSpec(a + " " + b + " " + c + " " + d)
					if err != nil {
						continue
					}
					if ring.Owner(p.KeyHash()) == 0 {
						victims = append(victims, p)
					} else {
						others = append(others, p)
					}
				}
			}
		}
	}
	return nil, fmt.Errorf("bddchaos: spec space exhausted before filling the corpus")
}

// awaitBreakerClose sends victim-owned requests until the half-open
// probe succeeds and the circuit closes (bounded at 15s — the scripted
// faults are over, so recovery failing is itself a finding, reported by
// the wantClose invariant).
func awaitBreakerClose(rt *route.Router, victimURL string, client *serve.Client, probs []*problem.Problem) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if backendRow(rt.Metrics(), victimURL).BreakerState == "closed" {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, _, _, _ = client.Minimize(ctx, serve.RequestFor(probs[0], ""))
		cancel()
		time.Sleep(50 * time.Millisecond)
	}
}

func backendRow(ms route.MetricsSnapshot, addr string) route.BackendSnapshot {
	for _, b := range ms.Backends {
		if b.Backend == addr {
			return b
		}
	}
	return route.BackendSnapshot{}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

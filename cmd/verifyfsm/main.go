// Command verifyfsm checks the equivalence of two finite state machines by
// symbolic breadth-first traversal of their product machine — the
// application the paper's experiments instrument (SIS's verify_fsm -m
// product, after Coudert et al. and Touati et al.).
//
// Machines come either from the built-in benchmark suite (-bench NAME,
// checked against itself, as in the paper) or from BLIF files (-a A.blif
// -b B.blif). The frontier-set minimization heuristic is selectable; the
// image engine can be the constrained functional vector (default, as in
// SIS) or clustered transition relations.
//
// Resource bounds (-maxnodes, -timeout, -iters) are enforced inside the
// BDD kernels: a traversal that trips a bound stops mid-recursion, reports
// a structured inconclusive verdict with the abort reason, and exits with
// status 3. Internal panics are caught at the top level and reported with
// the offending input (exit status 2).
//
// Usage:
//
//	verifyfsm -bench tlc [-minimize osm_bt] [-method fv|tr] [-iters N]
//	          [-maxnodes N] [-timeout D]
//	verifyfsm -a left.blif -b right.blif
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bddmin/internal/bdd"
	"bddmin/internal/circuits"
	"bddmin/internal/core"
	"bddmin/internal/fsm"
	"bddmin/internal/logic"
)

// currentInput describes the machines being checked, for the top-level
// panic report.
var currentInput string

func main() {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "verifyfsm: internal error: %v\n", r)
			if currentInput != "" {
				fmt.Fprintf(os.Stderr, "verifyfsm: while checking %s\n", currentInput)
			}
			os.Exit(2)
		}
	}()
	run()
}

func run() {
	var (
		bench    = flag.String("bench", "", "benchmark name to check against itself (see -list)")
		list     = flag.Bool("list", false, "list benchmark names and exit")
		fileA    = flag.String("a", "", "left machine (BLIF)")
		fileB    = flag.String("b", "", "right machine (BLIF)")
		minimize = flag.String("minimize", "const", "frontier minimization heuristic")
		method   = flag.String("method", "fv", "image engine: fv (functional vector) or tr (transition relation)")
		iters    = flag.Int("iters", 0, "max BFS iterations (0 = unbounded)")
		maxNodes = flag.Int("maxnodes", 0, "abort beyond this many live BDD nodes (0 = unbounded; enforced inside the kernels)")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget for the traversal, e.g. 30s (0 = none)")
		trace    = flag.Bool("trace", false, "on inequivalence, print a distinguishing input sequence")
	)
	flag.Parse()
	if *list {
		for _, e := range circuits.Suite() {
			fmt.Printf("%-10s %-9s inputs %2d latches %2d (original: %2d/%2d)\n",
				e.Name, e.Kind, e.Inputs, e.Latches, e.OrigInputs, e.OrigLatches)
		}
		return
	}

	var netA, netB *logic.Network
	switch {
	case *bench != "":
		currentInput = fmt.Sprintf("-bench %s", *bench)
		info, err := circuits.ByName(*bench)
		if err != nil {
			fail(err)
		}
		netA, netB = info.Build(), info.Build()
	case *fileA != "" && *fileB != "":
		currentInput = fmt.Sprintf("-a %s -b %s", *fileA, *fileB)
		var err error
		if netA, err = parseFile(*fileA); err != nil {
			fail(err)
		}
		if netB, err = parseFile(*fileB); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	h := core.ByName(*minimize)
	if h == nil {
		fail(fmt.Errorf("unknown heuristic %q", *minimize))
	}
	opts := fsm.Options{
		MaxIterations: *iters,
		MaxNodes:      *maxNodes,
		GCEvery:       4,
		Minimize: func(m *bdd.Manager, f, c bdd.Ref) bdd.Ref {
			return h.Minimize(m, f, c)
		},
	}
	if *timeout > 0 {
		opts.Deadline = time.Now().Add(*timeout)
	}
	switch *method {
	case "fv":
		opts.Method = fsm.FunctionalVector
	case "tr":
		opts.Method = fsm.TransitionRelation
	default:
		fail(fmt.Errorf("unknown method %q", *method))
	}

	m := bdd.New(0)
	p, err := fsm.NewProduct(m, netA, netB)
	if err != nil {
		fail(err)
	}
	var res fsm.Result
	if *trace {
		var ce *fsm.Counterexample
		ce, res = p.FindCounterexample(opts)
		if ce != nil {
			fmt.Printf("distinguishing input sequence (%d steps):\n%s", ce.Length(), ce)
		}
	} else {
		res = p.CheckEquivalence(opts)
	}
	fmt.Printf("%s vs %s: %s\n", netA.Name, netB.Name, res)
	fmt.Printf("manager: %d live nodes, %d GC runs\n", m.NumNodes(), m.GCRuns())
	if !res.Equal {
		os.Exit(1)
	}
	if res.Aborted {
		// Structured inconclusive report: the bound that fired, how far the
		// traversal got, and the best reached-set size it holds.
		fmt.Fprintf(os.Stderr, "verifyfsm: inconclusive: traversal aborted (%s) after %d iterations, %d-node reached set retained\n",
			res.AbortReason, res.Iterations, m.Size(res.Reached))
		os.Exit(3)
	}
}

func parseFile(path string) (*logic.Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return logic.ParseBLIF(f)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

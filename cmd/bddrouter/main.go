// Command bddrouter is the stateless multi-node front of the
// minimization service: it places POST /minimize jobs on a fleet of
// bddmind backends with a consistent-hash ring keyed on the instance's
// canonical identity (problem.CanonicalKey, hashed), so identical
// instances always land on the backend whose result cache and
// singleflight table can answer them, and cache locality survives a node
// joining or leaving.
//
// Usage:
//
//	bddrouter -backends http://127.0.0.1:8081,http://127.0.0.1:8082
//	          [-addr :8090] [-vnodes 128] [-probe-interval 1s]
//	          [-probe-timeout 500ms] [-fail-after 2] [-revive-after 2]
//	          [-max-attempts 0] [-retry-backoff 25ms]
//	          [-attempt-timeout 0] [-hedge-delay 0]
//	          [-breaker-threshold 5] [-breaker-cooldown 5s]
//	          [-retry-budget 32] [-retry-ratio 0.1]
//	          [-max-proxied-body 33554432] [-trace-out route.jsonl]
//
// Endpoints:
//
//	POST /minimize   proxied to the instance's ring backend, with
//	                 failover to the next ring node on connection error,
//	                 attempt timeout, truncated/corrupt response or 503
//	                 drain refusal (5xx answers are retried once); 429
//	                 backpressure is passed through with Retry-After
//	                 intact; every proxied response carries
//	                 X-Bddmind-Backend
//	GET  /healthz    200 while at least one backend is admitted
//	GET  /metrics    per-backend request/error/ejection/breaker counters,
//	                 the retry histogram, hedge/deadline/retry-budget
//	                 counters, and the ring composition
//
// Health: each backend's GET /healthz is probed every -probe-interval;
// -fail-after consecutive failures eject it from candidate selection
// (a draining bddmind answers 503 and is ejected before it starts
// refusing work), -revive-after consecutive successes re-admit it.
//
// Grey failures — backends that pass probes but stall, truncate or 500
// real traffic — are handled in-band: -attempt-timeout abandons a
// stalled forward, the request's timeout_ms rides along as an
// end-to-end deadline (propagated and shrunk across attempts via
// X-Bddmind-Deadline-Ms), -hedge-delay races a duplicate attempt
// against a slow one, and per-backend circuit breakers
// (-breaker-threshold / -breaker-cooldown) skip a sick backend the way
// probe ejection skips a dead one. The global retry budget
// (-retry-budget / -retry-ratio) bounds the extra attempts all of the
// above may add. See docs/OPERATIONS.md for the symptom → knob runbook.
//
// SIGTERM or SIGINT stops the probers and shuts the HTTP server down
// gracefully. The router holds no state worth draining — in-flight
// proxied requests complete, then it exits 0.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bddmin/internal/obs"
	"bddmin/internal/route"
)

func main() {
	var (
		addr          = flag.String("addr", ":8090", "listen address")
		backends      = flag.String("backends", "", "comma-separated bddmind base URLs (required)")
		vnodes        = flag.Int("vnodes", route.DefaultVirtualNodes, "virtual nodes per backend on the hash ring")
		probeInterval = flag.Duration("probe-interval", time.Second, "health-probe period per backend")
		probeTimeout  = flag.Duration("probe-timeout", 500*time.Millisecond, "per-probe timeout")
		failAfter     = flag.Int("fail-after", 2, "consecutive probe failures before ejection")
		reviveAfter   = flag.Int("revive-after", 2, "consecutive probe successes before re-admission")
		maxAttempts   = flag.Int("max-attempts", 0, "distinct backends tried per request (0 = all)")
		retryBackoff  = flag.Duration("retry-backoff", 25*time.Millisecond, "base jittered pause between failover attempts")
		attemptTO     = flag.Duration("attempt-timeout", 0, "per-attempt forward timeout; a stalled backend is abandoned and failed over (0 = unbounded)")
		hedgeDelay    = flag.Duration("hedge-delay", 0, "launch a hedged duplicate on the next ring candidate after this delay, first answer wins (0 = off)")
		brThreshold   = flag.Int("breaker-threshold", 5, "consecutive in-band failures before a backend's circuit opens")
		brCooldown    = flag.Duration("breaker-cooldown", 5*time.Second, "open-circuit cooldown before a half-open probe attempt")
		retryBudget   = flag.Int("retry-budget", 32, "retry-budget bucket capacity (extra attempts: failovers and hedges)")
		retryRatio    = flag.Float64("retry-ratio", 0.1, "retry-budget tokens earned per incoming request")
		maxProxied    = flag.Int64("max-proxied-body", 32<<20, "max buffered backend response bytes; larger responses fail the attempt")
		traceOut      = flag.String("trace-out", "", "write route events (forwarded/failover/hedge/breaker-open/...) as JSONL to this file")
	)
	flag.Parse()
	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, strings.TrimRight(b, "/"))
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "bddrouter: -backends is required (comma-separated base URLs)")
		flag.Usage()
		os.Exit(1)
	}

	cfg := route.Config{
		Backends:         urls,
		VirtualNodes:     *vnodes,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		FailAfter:        *failAfter,
		ReviveAfter:      *reviveAfter,
		MaxAttempts:      *maxAttempts,
		RetryBackoff:     *retryBackoff,
		AttemptTimeout:   *attemptTO,
		HedgeDelay:       *hedgeDelay,
		BreakerThreshold: *brThreshold,
		BreakerCooldown:  *brCooldown,
		RetryBudgetMax:   *retryBudget,
		RetryBudgetRatio: *retryRatio,
		MaxProxiedBody:   *maxProxied,
		// One pooled client for probes and forwards, sized generously: the
		// router multiplexes many client connections onto few backends.
		HTTP: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
		}},
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		bw := bufio.NewWriter(f)
		jl := obs.NewJSONL(bw)
		jl.Timings = true
		cfg.Trace = jl
		defer func() {
			if err := jl.Err(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			bw.Flush()
			f.Close()
		}()
	}

	rt := route.New(cfg)
	rt.Start()
	httpServer := &http.Server{Addr: *addr, Handler: rt.Handler()}

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("bddrouter: listening on %s, %d backends, %d vnodes each\n", *addr, len(urls), *vnodes)
		errc <- httpServer.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		fail(err)
	case sig := <-sigc:
		fmt.Printf("bddrouter: %v received, shutting down\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "bddrouter: shutdown: %v\n", err)
		os.Exit(1)
	}
	rt.Close()
	fmt.Println("bddrouter: exiting")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
